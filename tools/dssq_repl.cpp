// dssq_repl — an interactive sandbox for the DSS queue on simulated
// persistent memory.  Type `help` for commands; the canonical session:
//
//   > prep-enq 0 42
//   > exec-enq 0
//   > crash            # power failure: unflushed lines vanish
//   > recover          # Figure-6 recovery
//   > resolve 0        # (enqueue(42), OK) or (enqueue(42), ⊥)
//
// Useful for demos and for poking at the semantics without writing a test.

#include <cstdio>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/histogram.hpp"
#include "common/json_writer.hpp"
#include "common/metrics.hpp"
#include "dss/session.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/directory.hpp"
#include "pmem/dss_uring.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/shadow_pool.hpp"
#include "pmem/slot_lease.hpp"
#include "queues/dss_queue.hpp"
#include "queues/sharded_queue.hpp"

#if DSSQ_TRACE_ENABLED
#include "common/trace_export.hpp"
#endif

using namespace dssq;

namespace {

constexpr std::size_t kThreads = 8;

// Live flight recorder for the session, one ring per REPL tid.  It lives
// in ordinary volatile memory — the REPL has no heap to survive into —
// and `trace <file>` snapshots it as Perfetto JSON on demand.  Compiles
// to an empty shell when DSSQ_TRACE=OFF.
class ReplRecorder {
 public:
  ReplRecorder() {
    if (!trace::kEnabled) return;
    const std::size_t bytes =
        trace::FlightRecorder::bytes_for(kThreads, kRecords);
    mem_ = ::operator new(bytes, std::align_val_t{kCacheLineSize});
    rec_ = trace::FlightRecorder::format(mem_, kThreads, kRecords);
    trace::install(rec_);
  }
  ~ReplRecorder() {
    if (mem_ == nullptr) return;
    trace::unbind_ring();
    trace::uninstall();
    ::operator delete(mem_, std::align_val_t{kCacheLineSize});
  }
  ReplRecorder(const ReplRecorder&) = delete;
  ReplRecorder& operator=(const ReplRecorder&) = delete;

  const trace::FlightRecorder& rec() const noexcept { return rec_; }

 private:
  static constexpr std::size_t kRecords = 1024;
  void* mem_ = nullptr;
  trace::FlightRecorder rec_;
};

void print_help() {
  std::puts(
      "commands (tid in 0..7):\n"
      "  enq <tid> <v>        non-detectable enqueue\n"
      "  deq <tid>            non-detectable dequeue\n"
      "  prep-enq <tid> <v>   prep-enqueue(v)\n"
      "  exec-enq <tid>       exec-enqueue\n"
      "  prep-deq <tid>       prep-dequeue\n"
      "  exec-deq <tid>       exec-dequeue\n"
      "  resolve <tid>        resolve (A[t], R[t])\n"
      "  arm <k>              crash at the k-th upcoming persistence step\n"
      "  crash                power failure (unflushed lines are lost)\n"
      "  recover              centralized Figure-6 recovery\n"
      "  dump                 queue contents + every thread's X word\n"
      "  stats                counter snapshot + op latency percentiles\n"
      "  trace <file>         dump the flight recorder as Perfetto JSON\n"
      "  attach <heap> [name] inspect a shared heap file: list the named-\n"
      "                       object directory, open the published queue\n"
      "                       (by name, or the first queue root found) and\n"
      "                       print its contents, X words, lease table,\n"
      "                       and submission/completion ring table\n"
      "  help | quit");
}

void print_stats() {
  json::Writer w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  if (metrics::kEnabled) {
    const metrics::Snapshot s = metrics::snapshot();
    for (std::size_t i = 0; i < metrics::kCounterCount; ++i) {
      const auto c = static_cast<metrics::Counter>(i);
      w.kv(metrics::name(c), s[c]);
    }
  }
  w.end_object();
  w.key("latency_ns");
  w.begin_object();
  const LatencyHistogram h = hist::merged();
  w.kv("count", h.count());
  w.kv("min", h.min());
  w.kv("p50", h.percentile(50));
  w.kv("p95", h.percentile(95));
  w.kv("p99", h.percentile(99));
  w.kv("p999", h.percentile(99.9));
  w.kv("max", h.max());
  w.end_object();
  w.kv("metrics_enabled", metrics::kEnabled);
  w.kv("trace_enabled", trace::kEnabled);
  w.kv("trace_dropped", trace::dropped());
  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

/// Print an adopted queue's contents and every slot's resolve() view.
template <class Q>
void print_adopted(Q& q, std::size_t slots) {
  std::vector<queues::Value> rest;
  q.drain_to(rest);
  std::printf("queue (front..back, %zu values):", rest.size());
  for (const queues::Value x : rest) std::printf(" %ld", x);
  std::printf("\nX:");
  for (std::size_t t = 0; t < slots; ++t) {
    if (q.x_word(t) != 0) {
      std::printf(" [%zu]=%s", t, q.resolve(t).to_string().c_str());
    }
  }
  std::printf("\n");
}

/// `attach <heap> [name]` — one-shot inspection of a multi-process heap
/// through a dss::Session: list the directory, open<>() the named (or
/// first) published queue, and render the slot-lease and ring tables if
/// published.  Read-only in spirit; racy against live writers, like any
/// debugger attach.
void attach_inspect(const std::string& path, const std::string& name) {
  try {
    dss::Session session = dss::Session::attach(path);
    pmem::PersistentHeap& heap = session.heap();
    pmem::Directory dir(heap.dir_base(), heap.dir_bytes());
    const std::uint64_t qtag = pmem::type_tag_of<queues::QueueRoot>();
    const std::uint64_t ltag =
        pmem::type_tag_of<pmem::SlotLeaseTable::Header>();
    const std::uint64_t utag = pmem::type_tag_of<pmem::UringTable::Header>();
    std::string queue_name = name;
    std::string lease_name;
    std::string ring_name;
    std::printf("directory of %s (generation %llu, capacity %zu):\n",
                path.c_str(),
                static_cast<unsigned long long>(heap.generation()),
                dir.count());
    dir.for_each([&](const std::string& n, std::uint64_t tag,
                     std::uint64_t addr) {
      std::printf("  %-24s tag=%016llx addr=0x%llx%s\n", n.c_str(),
                  static_cast<unsigned long long>(tag),
                  static_cast<unsigned long long>(addr),
                  addr == 0 ? "  (TORN)" : "");
      if (queue_name.empty() && tag == qtag && addr != 0) queue_name = n;
      if (lease_name.empty() && tag == ltag && addr != 0) lease_name = n;
      if (ring_name.empty() && tag == utag && addr != 0) ring_name = n;
    });
    if (queue_name.empty()) {
      std::puts("no published queue root to adopt");
      return;
    }
    const std::uint64_t kind = session.queue_kind(queue_name);
    if (kind == 0) {
      std::printf("no queue root named '%s'\n", queue_name.c_str());
      return;
    }
    std::printf("opening '%s' (%s)\n", queue_name.c_str(),
                kind == queues::QueueRoot::kKindSingle ? "single lane"
                                                       : "sharded");
    if (kind == queues::QueueRoot::kKindSingle) {
      auto aq =
          session.open<queues::DssQueue<pmem::MmapContext>>(queue_name);
      print_adopted(aq, aq.max_threads());
    } else {
      auto aq =
          session.open<queues::ShardedDssQueue<pmem::MmapContext>>(
              queue_name);
      print_adopted(aq, aq.max_threads());
    }
    if (!lease_name.empty()) {
      pmem::SlotLeaseTable leases =
          session.open<pmem::SlotLeaseTable>(lease_name);
      std::printf("leases ('%s'):\n", lease_name.c_str());
      for (std::size_t i = 0; i < leases.slots(); ++i) {
        const std::uint64_t w = leases.owner_word(i);
        std::printf(
            "  [%zu] %-10s pid=%u gen=%llu birth=%llu beats=%llu "
            "acquires=%llu reclaims=%llu\n",
            i, pmem::SlotLeaseTable::state_name(w),
            pmem::SlotLeaseTable::pid_of(w),
            static_cast<unsigned long long>(
                pmem::SlotLeaseTable::gen_of(w)),
            static_cast<unsigned long long>(leases.birth(i)),
            static_cast<unsigned long long>(leases.heartbeat(i)),
            static_cast<unsigned long long>(leases.acquire_count(i)),
            static_cast<unsigned long long>(leases.reclaim_count(i)));
      }
    }
    if (!ring_name.empty()) {
      pmem::UringTable rings = session.open<pmem::UringTable>(ring_name);
      std::printf("rings ('%s', capacity %llu):\n", ring_name.c_str(),
                  static_cast<unsigned long long>(
                      rings.header()->capacity));
      for (std::size_t i = 0; i < rings.header()->slots; ++i) {
        std::printf(
            "  [%zu] sub=%llu head=%llu comp=%llu depth=%llu "
            "settles=%llu settled=%llu torn=%llu\n",
            i, static_cast<unsigned long long>(rings.sub_tail(i)),
            static_cast<unsigned long long>(rings.sub_head(i)),
            static_cast<unsigned long long>(rings.comp_tail(i)),
            static_cast<unsigned long long>(rings.depth(i)),
            static_cast<unsigned long long>(rings.settle_passes(i)),
            static_cast<unsigned long long>(rings.settled(i)),
            static_cast<unsigned long long>(rings.torn_refused(i)));
      }
    }
  } catch (const std::exception& e) {
    std::printf("attach failed: %s\n", e.what());
  }
}

void dump_trace(const ReplRecorder& recorder, const std::string& path) {
  if (path.empty()) {
    std::puts("usage: trace <out.perfetto.json>");
    return;
  }
  if (!trace::kEnabled) {
    std::puts("flight recorder compiled out (DSSQ_TRACE=OFF)");
    return;
  }
#if DSSQ_TRACE_ENABLED
  trace::ExportMeta meta;
  meta.process_name = "dssq_repl";
  const std::string doc = trace::export_chrome_json(recorder.rec(), meta);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot open %s\n", path.c_str());
    return;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  std::printf(ok ? "wrote %s\n" : "short write to %s\n", path.c_str());
#else
  (void)recorder;
#endif
}

}  // namespace

int main() {
  ReplRecorder recorder;
  pmem::ShadowPool pool(1 << 22);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  queues::DssQueue<pmem::SimContext> q(ctx, kThreads, 1024);

  std::puts("DSS queue REPL — simulated persistent memory. `help` for "
            "commands.");
  std::string line;
  while (std::printf("> "), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    std::size_t tid = 0;
    queues::Value v = 0;
    try {
      if (cmd.empty()) continue;
      if (cmd == "help") {
        print_help();
      } else if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (cmd == "enq") {
        in >> tid >> v;
        if (tid < kThreads) trace::bind_ring(tid);
        const std::uint64_t t0 = trace::now_ns();
        q.enqueue(tid, v);
        hist::record(trace::now_ns() - t0);
        std::puts("ok");
      } else if (cmd == "deq") {
        in >> tid;
        if (tid < kThreads) trace::bind_ring(tid);
        const std::uint64_t t0 = trace::now_ns();
        const queues::Value got = q.dequeue(tid);
        hist::record(trace::now_ns() - t0);
        if (got == queues::kEmpty) std::puts("EMPTY");
        else std::printf("%ld\n", got);
      } else if (cmd == "prep-enq") {
        in >> tid >> v;
        if (tid < kThreads) trace::bind_ring(tid);
        const std::uint64_t t0 = trace::now_ns();
        q.prep_enqueue(tid, v);
        hist::record(trace::now_ns() - t0);
        std::puts("prepared");
      } else if (cmd == "exec-enq") {
        in >> tid;
        if (tid < kThreads) trace::bind_ring(tid);
        const std::uint64_t t0 = trace::now_ns();
        q.exec_enqueue(tid);
        hist::record(trace::now_ns() - t0);
        std::puts("executed");
      } else if (cmd == "prep-deq") {
        in >> tid;
        if (tid < kThreads) trace::bind_ring(tid);
        const std::uint64_t t0 = trace::now_ns();
        q.prep_dequeue(tid);
        hist::record(trace::now_ns() - t0);
        std::puts("prepared");
      } else if (cmd == "exec-deq") {
        in >> tid;
        if (tid < kThreads) trace::bind_ring(tid);
        const std::uint64_t t0 = trace::now_ns();
        const queues::Value got = q.exec_dequeue(tid);
        hist::record(trace::now_ns() - t0);
        if (got == queues::kEmpty) std::puts("EMPTY");
        else std::printf("%ld\n", got);
      } else if (cmd == "resolve") {
        in >> tid;
        std::printf("%s\n", q.resolve(tid).to_string().c_str());
      } else if (cmd == "arm") {
        std::int64_t k = 0;
        in >> k;
        points.arm_countdown(k);
        std::printf("armed: crash at persistence step %ld\n", k);
      } else if (cmd == "crash") {
        points.disarm();
        const auto report = pool.crash();
        std::printf("crashed: %zu dirty lines, %zu survived\n",
                    report.dirty_lines, report.survived_lines);
      } else if (cmd == "recover") {
        q.recover();
        std::puts("recovered");
      } else if (cmd == "dump") {
        std::vector<queues::Value> rest;
        q.drain_to(rest);
        std::printf("queue (front..back):");
        for (const queues::Value x : rest) std::printf(" %ld", x);
        std::printf("\nX:");
        for (std::size_t t = 0; t < kThreads; ++t) {
          const TaggedWord w = q.x_word(t);
          if (w != 0) {
            std::printf(" [%zu]=%s", t, q.resolve(t).to_string().c_str());
          }
        }
        std::printf("\n");
      } else if (cmd == "stats") {
        print_stats();
      } else if (cmd == "trace") {
        std::string path;
        in >> path;
        dump_trace(recorder, path);
      } else if (cmd == "attach") {
        std::string path, name;
        in >> path >> name;
        if (path.empty()) {
          std::puts("usage: attach <heapfile> [name]");
        } else {
          attach_inspect(path, name);
        }
      } else {
        std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
      }
    } catch (const pmem::SimulatedCrash& c) {
      std::printf("** SIMULATED CRASH at '%s' — volatile state lost; use "
                  "`crash` then `recover` **\n",
                  c.label);
      points.disarm();
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
