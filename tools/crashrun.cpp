// crashrun — cross-process crash-restart torture for the DSS queue.
//
//   crashrun [--file PATH] [--storms N] [--kids K] [--threads T]
//            [--ops N] [--seed S] [--trace-json PATH] [--perfetto PATH]
//            [--keep-file]
//
// Each storm drives one heap file through several process lifetimes:
//
//   parent   creates the PersistentHeap + queue + oracle, closes cleanly;
//   kid 0..K forked children each open the SAME file, attach, run Figure-6
//            recovery, audit exactly-once against the persisted oracle,
//            then run a multithreaded detectable workload with a KillSwitch
//            armed at a seed-randomized crash point — and die by SIGKILL
//            mid-operation (no destructors, no flushes);
//   final    one last child recovers, audits, and closes the heap cleanly.
//
// Unlike crash_torture (in-process, simulated persistence adversary), every
// recovery here reads exactly the bytes the kernel kept for a process that
// really died.  Any lost or duplicated value aborts with a replayable seed.
// With --trace-json, every recovering child appends a JSONL record of its
// RecoveryTrace and audit verdicts (uploaded as a CI artifact).
//
// The heap also carries a flight recorder (one ring per worker thread plus
// one for the main thread), so each recovering child reads the timeline the
// DEAD process left behind: its last operations, CAS retries, persists, and
// the crash point the KillSwitch fired on.  The JSONL record summarizes
// that timeline, and --perfetto additionally writes the full two-incarnation
// trace (crashed + recovering, distinguished per event) as Chrome-tracing
// JSON for ui.perfetto.dev.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/trace_export.hpp"
#include "dss/session.hpp"
#include "harness/fork_crash.hpp"
#include "pmem/dss_uring.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/slot_lease.hpp"
#include "queues/dss_queue.hpp"
#include "queues/sharded_queue.hpp"

using namespace dssq;

namespace {

struct Config {
  std::string path = "/tmp/crashrun.heap";
  std::string trace_json;  // empty = no trace
  std::string perfetto;    // empty = no Perfetto export
  std::uint64_t storms = 20;
  std::uint64_t kids = 3;  // crashed generations per storm
  std::size_t threads = 4;
  std::size_t ops_per_thread = 150;
  std::uint64_t seed = 1;
  /// 0 = single-lane DssQueue; N ≥ 1 = ShardedDssQueue with N lanes.
  /// Settable by --lanes or (when the flag is absent) by DSSQ_LANES.
  std::size_t lanes = 0;
  bool keep_file = false;
  /// Client-storm mode (the multi-process serving layer): N concurrently
  /// ATTACHED single-threaded client processes share one queue through the
  /// heap's named directory and the slot-lease table, instead of the
  /// classic one-process-at-a-time generations above.
  std::size_t clients = 0;  // 0 = classic generational mode
  bool kill_client = false;
  std::uint64_t kills = 30;  // SIGKILLs per storm when --kill-client
  /// Client-storm only: serve through per-slot submission/completion rings
  /// (dss::Session + UringTable) instead of direct synchronous prep/exec.
  bool rings = false;
};

/// Geometry persisted in the heap's root block so every recovering process
/// replays the allocation sequence with the crashed process's parameters.
struct RootConfig {
  std::uint64_t threads = 0;
  std::uint64_t nodes_per_thread = 0;
  std::uint64_t oracle_capacity = 0;
  std::uint64_t trace_rings = 0;
  std::uint64_t trace_records = 0;
  /// 0 = single-lane DssQueue; else the sharded queue's lane count.  The
  /// crashed process's choice is authoritative — the recovering child must
  /// replay the same allocation sequence, whatever its own environment.
  std::uint64_t lanes = 0;
  /// Client-storm mode only: the flight recorder cannot be found by
  /// positional replay (clients adopt, they never replay allocations), so
  /// its heap address rides in the root block like the directory roots.
  std::uint64_t recorder_addr = 0;
  /// Client-storm --rings mode: entries per submission/completion ring
  /// (power of two).  0 = no ring table was created for this heap.
  std::uint64_t ring_capacity = 0;
};

constexpr std::size_t kNodesPerThread = 1024;
constexpr std::size_t kTraceRecordsPerRing = 512;

/// The heap-resident flight recorder: allocated positionally AFTER the
/// queue and oracle, so attach-replaying children land on the same
/// address.  Ring t belongs to worker tid t; the extra last ring is the
/// main thread's (recovery steps land there).
trace::FlightRecorder heap_recorder(pmem::MmapContext& ctx,
                                    const RootConfig& rc, bool create) {
  const std::size_t bytes = trace::FlightRecorder::bytes_for(
      rc.trace_rings, rc.trace_records);
  void* mem = ctx.raw_alloc(bytes, kCacheLineSize);
  return create ? trace::FlightRecorder::format(mem, rc.trace_rings,
                                                rc.trace_records)
                : trace::FlightRecorder::attach(mem, bytes);
}

std::size_t heap_bytes_for(const Config& cfg, std::size_t capacity) {
  // Anchors + sentinel per lane (sharded) or the 3 fixed lines (single).
  const std::size_t anchors = 3 * (cfg.lanes == 0 ? 1 : cfg.lanes);
  const std::size_t queue = kCacheLineSize * (anchors + cfg.threads) +
                            kCacheLineSize * cfg.threads * kNodesPerThread;
  const std::size_t oracle =
      kCacheLineSize * cfg.threads * (1 + capacity);
  const std::size_t recorder = trace::FlightRecorder::bytes_for(
      cfg.threads + 1, kTraceRecordsPerRing);
  return 2 * (queue + oracle + recorder) + (1u << 20);
}

std::size_t oracle_capacity_for(const Config& cfg) {
  // Every generation (kids + final) may begin up to ops_per_thread entries
  // per thread, plus slack for settled pendings.
  return (cfg.kids + 1) * cfg.ops_per_thread + 16;
}

void append_trace_line(const std::string& path, const std::string& line) {
  if (path.empty()) return;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return;
  const std::string full = line + "\n";
  // Single write so a SIGKILL mid-append at worst truncates one line.
  (void)!::write(fd, full.data(), full.size());
  ::close(fd);
}

template <class Q>
void run_workload(Q& q, harness::Oracle& oracle, const RootConfig& rc,
                  std::size_t ops, std::uint64_t seed) {
  std::vector<std::thread> workers;
  workers.reserve(rc.threads);
  for (std::size_t t = 0; t < rc.threads; ++t) {
    workers.emplace_back([&, t] {
      trace::ThreadRing ring(t);  // worker tid t writes recorder ring t
      Xoshiro256 rng(hash_combine(seed, t));
      for (std::size_t i = 0; i < ops; ++i) {
        if (rng.next_bool(0.5)) {
          const queues::Value v = oracle.begin_enqueue(t);
          q.prep_enqueue(t, v);
          q.exec_enqueue(t);
          oracle.complete_enqueue(t);
        } else {
          oracle.begin_dequeue(t);
          q.prep_dequeue(t);
          const queues::Value v = q.exec_dequeue(t);
          oracle.complete_dequeue(t, v);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

/// Everything a recovering child does once its queue is attached: recover,
/// audit, trace, workload, optional clean close.  Templated so the single-
/// lane and sharded queues share the generation body.
template <class Q>
int run_generation(const Config& cfg, pmem::PersistentHeap& heap,
                   pmem::MmapContext& ctx, harness::KillSwitch& ks, Q& q,
                   const RootConfig* rc, std::uint64_t seed,
                   std::int64_t countdown, bool final_close,
                   std::uint64_t storm, std::uint64_t child) {
  {
    harness::Oracle oracle(heap, rc->threads, rc->oracle_capacity);
    // Re-attach the heap-resident flight recorder and remember each ring's
    // tail: everything at or below it was written by the DEAD incarnation.
    trace::FlightRecorder recorder = heap_recorder(ctx, *rc, /*create=*/false);
    trace::ExportMeta trace_meta;
    trace_meta.process_name = "crashrun storm " + std::to_string(storm) +
                              " gen " + std::to_string(heap.generation());
    if (recorder.valid()) {
      for (std::size_t r = 0; r < recorder.ring_count(); ++r) {
        trace_meta.boundary_seq.push_back(recorder.ring_seq(r));
      }
      trace::install(recorder);
      trace::bind_ring(recorder.ring_count() - 1);  // main thread's ring
    }
    if (countdown > 0) {
      ctx.set_crash_hook(&harness::KillSwitch::hook, &ks);
      ks.arm(countdown);  // recovery + audit are inside the blast radius
    }
    q.recover();
    const harness::VerifyResult vr = harness::verify_exactly_once(q, oracle);

    json::Writer w;
    w.begin_object();
    w.kv("storm", storm);
    w.kv("child", child);
    w.kv("generation", heap.generation());
    w.kv("backend", ctx.backend_name());
    w.kv("lanes", rc->lanes);
    w.kv("fence_combining", pmem::fence_combining_enabled());
    w.kv("prev_clean", heap.previous_shutdown_clean());
    w.kv("ok", vr.ok);
    w.kv("enqueued", vr.enqueued);
    w.kv("dequeued", vr.dequeued);
    w.kv("remaining", vr.remaining);
    w.kv("pendings_settled",
         static_cast<std::uint64_t>(vr.pendings_settled));
    w.kv("pendings_lost", static_cast<std::uint64_t>(vr.pendings_lost));
    const metrics::RecoveryTrace& rt = q.last_recovery();
    w.key("recovery");
    w.begin_object();
    w.kv("nodes_scanned", rt.nodes_scanned);
    w.kv("tags_repaired", rt.tags_repaired);
    w.kv("nodes_reclaimed", rt.nodes_reclaimed);
    w.kv("head_moved", rt.head_moved);
    w.kv("tail_moved", rt.tail_moved);
    w.end_object();
    // The dead incarnation's timeline, per ring: record count, last event,
    // and — when its final record is the KillSwitch marker — the crash
    // point label it died on.
    if (recorder.valid()) {
      w.key("dead_trace");
      w.begin_object();
      std::string crash_point;
      w.key("rings");
      w.begin_array();
      for (std::size_t r = 0; r < recorder.ring_count(); ++r) {
        const std::uint64_t boundary = trace_meta.boundary_seq[r];
        const auto records = recorder.decode_ring(r);
        std::uint64_t dead = 0;
        const trace::DecodedRecord* last = nullptr;
        for (const auto& rec : records) {
          if (rec.seq > boundary) break;  // recovering incarnation from here
          ++dead;
          last = &rec;
        }
        w.begin_object();
        w.kv("ring", static_cast<std::uint64_t>(r));
        w.kv("dead_records", dead);
        if (last != nullptr) {
          std::string ev = trace::name(last->event);
          if (last->event == trace::Event::kOpBegin ||
              last->event == trace::Event::kOpEnd) {
            ev += std::string(":") + trace::name(last->op);
            if (last->phase != trace::Phase::kNone) {
              ev += std::string("/") + trace::name(last->phase);
            }
          }
          w.kv("last_event", ev);
          if (last->event == trace::Event::kCrashPointArmed) {
            const char* label = recorder.label(last->arg);
            if (label != nullptr) crash_point = label;
          }
        }
        w.end_object();
      }
      w.end_array();
      if (!crash_point.empty()) w.kv("crash_point", crash_point);
      w.end_object();
    }
    w.end_object();
    append_trace_line(cfg.trace_json, w.str());
    // Full two-incarnation timeline for ui.perfetto.dev (each recovering
    // child overwrites the file; the last one wins — in CI that is the
    // trace of the final storm's last recovery).
    if (recorder.valid() && !cfg.perfetto.empty()) {
      std::FILE* f = std::fopen(cfg.perfetto.c_str(), "w");
      if (f != nullptr) {
        const std::string doc =
            trace::export_chrome_json(recorder, trace_meta);
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      }
    }

    if (!vr.ok) {
      std::fprintf(stderr,
                   "crashrun child (storm %llu gen %llu): exactly-once "
                   "VIOLATION: %s\n",
                   static_cast<unsigned long long>(storm),
                   static_cast<unsigned long long>(heap.generation()),
                   vr.error.c_str());
      return 2;
    }
    run_workload(q, oracle, *rc, cfg.ops_per_thread, seed);
    if (final_close) {
      ks.disarm();
      // Detach the recorder before the mapping goes away.
      trace::unbind_ring();
      trace::uninstall();
      heap.close();
    }
    return 0;
  }
}

/// Body of every forked child: open → attach (single-lane or sharded, as
/// the root config of the CRASHED process dictates) → recover → audit →
/// workload (→ clean close for the final generation).  Exit codes: 0 ok,
/// 2 audit violation, 3 open/attach error.  A SIGKILL from the armed
/// KillSwitch preempts all of it — which is the point.
int child_run(const Config& cfg, std::uint64_t seed, std::int64_t countdown,
              bool final_close, std::uint64_t storm, std::uint64_t child) {
  try {
    pmem::PersistentHeap heap(cfg.path,
                              pmem::PersistentHeap::OpenMode::kOpen);
    const auto* rc = static_cast<const RootConfig*>(heap.root());
    if (rc->threads == 0 || rc->threads > 1024) {
      std::fprintf(stderr, "crashrun child: root config looks corrupt\n");
      return 3;
    }
    pmem::MmapContext ctx(heap);
    harness::KillSwitch ks;
    if (rc->lanes == 0) {
      queues::DssQueue<pmem::MmapContext> q(pmem::attach, ctx, rc->threads,
                                            rc->nodes_per_thread);
      return run_generation(cfg, heap, ctx, ks, q, rc, seed, countdown,
                            final_close, storm, child);
    }
    queues::ShardedDssQueue<pmem::MmapContext> q(
        pmem::attach, ctx, rc->threads, rc->nodes_per_thread, rc->lanes);
    return run_generation(cfg, heap, ctx, ks, q, rc, seed, countdown,
                          final_close, storm, child);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crashrun child: %s\n", e.what());
    return 3;
  }
}

// ---- client-storm mode (multi-process serving layer) -----------------------
//
//   crashrun --clients N [--kill-client [--kills K]] ...
//
// One creator process builds the heap, queue, oracle, and slot-lease table,
// PUBLISHES their roots in the heap's named directory, and closes — then N
// single-threaded client processes open the SAME file concurrently, adopt
// the queue by directory lookup, lease a detectability slot each, and
// serve.  With --kill-client the parent SIGKILLs random clients at random
// 1–20 ms intervals and forks replacements; a replacement finds every slot
// held (slots == clients) and must RECLAIM the dead holder's lease, which
// runs the dead client's per-slot recovery (repair X[t], settle its
// pending op against the oracle) before the slot serves again.  A final
// verifier child reclaims whatever is still dead, runs quiescent recovery,
// and audits exactly-once across every client lifetime.

constexpr const char* kQueueName = "crashrun/queue";
constexpr const char* kOracleName = "crashrun/oracle";
constexpr const char* kLeaseName = "crashrun/leases";
constexpr const char* kRingsName = "crashrun/rings";

/// --rings mode ring depth.  Far deeper than the single-op window the
/// oracle-checked clients keep in flight, so backpressure never binds in
/// the storm (the dedicated backpressure test lives in test_dss_uring).
constexpr std::size_t kRingCapacity = 64;

std::string stop_path(const Config& cfg) { return cfg.path + ".stop"; }

/// Worst-case per-slot op bound: every kill could land on the same slot,
/// and every incarnation begins up to ops_per_thread entries (plus the
/// settled pending and the adopt-time cursor-window leak).
std::size_t client_oracle_capacity(const Config& cfg) {
  return (cfg.kills + 1) * (cfg.ops_per_thread + 2) + 16;
}
std::size_t client_nodes_per_thread(const Config& cfg) {
  return (cfg.kills + 1) * (cfg.ops_per_thread + pmem::kCursorChunk) + 16;
}

std::size_t client_heap_bytes(const Config& cfg, std::size_t capacity,
                              std::size_t nodes) {
  const std::size_t lanes = cfg.lanes == 0 ? 1 : cfg.lanes;
  const std::size_t queue =
      kCacheLineSize * (3 * lanes + 8 * cfg.clients) +
      kCacheLineSize * cfg.clients * nodes;
  const std::size_t oracle = kCacheLineSize * cfg.clients * (1 + capacity);
  const std::size_t recorder = trace::FlightRecorder::bytes_for(
      cfg.clients + 1, kTraceRecordsPerRing);
  const std::size_t leases =
      pmem::SlotLeaseTable::bytes_for(cfg.clients);
  const std::size_t rings =
      cfg.rings ? pmem::UringTable::bytes_for(cfg.clients, kRingCapacity)
                : 0;
  return 2 * (queue + oracle + recorder + leases + rings) + (1u << 20);
}

/// Mid-storm/verifier ring-settle accounting (per reclaiming process).
struct RingTally {
  std::uint64_t rings_settled = 0;    // settle passes this process ran
  std::uint64_t entries_settled = 0;  // submissions those passes closed out
};

/// The settle callback shared by mid-storm reclamation and the final
/// verifier: the dead owner's Figure-6 per-slot recovery, run BEFORE the
/// slot is reissued (slot_lease.hpp's safety contract).  With rings, the
/// orphan's submission ring is drained (ack / resubmit / refuse, against
/// the executor journal and the repaired X[t]) before the oracle's pending
/// entry is settled — a resubmitted op must land in X[t] first so the
/// cross-checked settle sees it.
template <class Q>
void settle_dead_slot(dss::Session& session, Q& q, harness::Oracle& oracle,
                      pmem::UringTable* rings, std::size_t t,
                      std::size_t* settled, std::size_t* lost,
                      RingTally* tally) {
  oracle.repair_slot(t);
  q.recover_independent(t);
  if (rings != nullptr) {
    const pmem::UringTable::SettleStats st =
        rings->settle(session.ctx(), q, t);
    if (tally != nullptr) {
      tally->rings_settled += 1;
      tally->entries_settled += st.entries;
    }
  }
  harness::settle_pending(q, oracle, t, settled, lost);
}

/// A serving client's life: lease a slot (reclaiming a dead holder's when
/// none is free), run single-threaded detectable ops on it until the stop
/// file appears (idling on heartbeats once the op budget is spent, so
/// oracle capacity stays bounded however long the storm lasts), release.
///
/// With --rings each op goes through the slot's submission/completion ring
/// (dss::Handle submit → self-drain → await) instead of direct prep/exec,
/// so a SIGKILL can land between submission and execution — the orphaned
/// entry is then resolved by whoever settles the ring during reclamation.
/// The oracle tracks one pending op per slot, so the serving window is 1.
template <class Q>
int client_loop(const Config& cfg, dss::Session& session, Q& q,
                harness::Oracle& oracle, pmem::SlotLeaseTable& leases,
                pmem::UringTable* rings, const RootConfig* rc,
                std::uint64_t seed) {
  pmem::PersistentHeap& heap = session.heap();
  trace::FlightRecorder recorder =
      rc->recorder_addr != 0
          ? trace::FlightRecorder::attach(
                reinterpret_cast<void*>(rc->recorder_addr),
                trace::FlightRecorder::bytes_for(rc->trace_rings,
                                                 rc->trace_records))
          : trace::FlightRecorder();
  const std::string stop = stop_path(cfg);
  std::size_t slot = pmem::SlotLeaseTable::kNoSlot;
  while (slot == pmem::SlotLeaseTable::kNoSlot) {
    slot = session.acquire_or_reclaim(leases, [&](std::size_t t) {
      settle_dead_slot(session, q, oracle, rings, t, nullptr, nullptr,
                       nullptr);
    });
    if (slot == pmem::SlotLeaseTable::kNoSlot) {
      if (::access(stop.c_str(), F_OK) == 0) return 0;  // storm is over
      ::usleep(200);  // every slot held by a live peer; wait for a death
    }
  }
  if (recorder.valid()) {
    trace::install(recorder);
    trace::bind_ring(slot);  // ring t belongs to slot t's current holder
  }
  std::optional<dss::Handle<Q>> h;
  if (rings != nullptr) h.emplace(session, q, *rings, slot);
  Xoshiro256 rng(hash_combine(seed, slot));
  std::size_t budget = cfg.ops_per_thread;
  while (::access(stop.c_str(), F_OK) != 0) {
    if (budget == 0) {  // budget spent: stay alive as a kill target
      leases.beat(slot, heap.backend());
      ::usleep(500);
      continue;
    }
    --budget;
    if ((budget & 15) == 0) leases.beat(slot, heap.backend());
    // Pace the budget across the storm so SIGKILLs land on clients that
    // are actively serving (sometimes mid-operation), not only on idlers.
    ::usleep(static_cast<useconds_t>(rng.next_below(300)));
    if (rng.next_bool(0.5)) {
      const queues::Value v = oracle.begin_enqueue(slot);
      if (h.has_value()) {
        while (!h->submit_enqueue(v)) (void)h->pump();
        (void)h->await();
      } else {
        q.prep_enqueue(slot, v);
        q.exec_enqueue(slot);
      }
      oracle.complete_enqueue(slot);
    } else {
      oracle.begin_dequeue(slot);
      queues::Value v;
      if (h.has_value()) {
        while (!h->submit_dequeue()) (void)h->pump();
        v = h->await().result;
      } else {
        q.prep_dequeue(slot);
        v = q.exec_dequeue(slot);
      }
      oracle.complete_dequeue(slot, v);
    }
  }
  leases.release(slot, heap.backend());
  if (recorder.valid()) {
    trace::unbind_ring();
    trace::uninstall();
  }
  return 0;
}

/// Body of every forked client: attach a dss::Session to the shared heap,
/// open the published roots through it, serve.  Exit codes: 0 ok, 3
/// open/adopt error (Session::open throws on missing names and on roots
/// that fail their type's validation).
int client_serve(const Config& cfg, std::uint64_t seed) {
  try {
    dss::Session session = dss::Session::attach(cfg.path);
    const auto* rc = session.root<const RootConfig>();
    harness::Oracle oracle = session.open<harness::Oracle>(kOracleName);
    pmem::SlotLeaseTable leases =
        session.open<pmem::SlotLeaseTable>(kLeaseName);
    std::optional<pmem::UringTable> rings;
    if (rc->ring_capacity != 0) {
      rings.emplace(session.open<pmem::UringTable>(kRingsName));
    }
    pmem::UringTable* rp = rings.has_value() ? &*rings : nullptr;
    if (session.queue_kind(kQueueName) == queues::QueueRoot::kKindSingle) {
      auto q = session.open<queues::DssQueue<pmem::MmapContext>>(kQueueName);
      return client_loop(cfg, session, q, oracle, leases, rp, rc, seed);
    }
    auto q =
        session.open<queues::ShardedDssQueue<pmem::MmapContext>>(kQueueName);
    return client_loop(cfg, session, q, oracle, leases, rp, rc, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crashrun client: %s\n", e.what());
    return 3;
  }
}

/// The storm's last process: reclaim every lease still held by a dead
/// client (settling its pending op through the same path the mid-storm
/// reclaimers use), run quiescent Figure-6 recovery, audit exactly-once
/// over EVERY client lifetime, and close the heap cleanly.
template <class Q>
int verify_loop(const Config& cfg, dss::Session& session, Q& q,
                harness::Oracle& oracle, pmem::SlotLeaseTable& leases,
                pmem::UringTable* rings, std::uint64_t storm) {
  pmem::PersistentHeap& heap = session.heap();
  std::size_t lease_settled = 0;
  std::size_t lease_lost = 0;
  RingTally tally;
  for (;;) {
    const std::size_t i =
        leases.reclaim_dead(heap.backend(), [&](std::size_t t) {
          settle_dead_slot(session, q, oracle, rings, t, &lease_settled,
                           &lease_lost, &tally);
        });
    if (i == pmem::SlotLeaseTable::kNoSlot) break;
    leases.release(i, heap.backend());
  }
  q.recover();
  for (std::size_t t = 0; t < oracle.threads(); ++t) oracle.repair_slot(t);
  const harness::VerifyResult vr = harness::verify_exactly_once(q, oracle);

  std::uint64_t acquires = 0;
  for (std::size_t i = 0; i < leases.slots(); ++i) {
    acquires += leases.acquire_count(i);
  }
  // Ring invariants after the storm: every slot's rings drained (no
  // submission outruns its completion), plus storm-wide settle evidence
  // from the persistent counters (mid-storm reclaims happened in processes
  // that are dead by now — their tallies survive only in the heap).
  bool rings_empty = true;
  std::uint64_t rings_settled = 0;
  std::uint64_t ring_entries_settled = 0;
  std::uint64_t ring_torn_refused = 0;
  if (rings != nullptr) {
    for (std::size_t i = 0; i < rings->header()->slots; ++i) {
      if (rings->depth(i) != 0 || rings->comp_tail(i) != rings->sub_tail(i)) {
        rings_empty = false;
      }
      rings_settled += rings->settle_passes(i);
      ring_entries_settled += rings->settled(i);
      ring_torn_refused += rings->torn_refused(i);
    }
  }
  json::Writer w;
  w.begin_object();
  w.kv("mode", "clients");
  w.kv("storm", storm);
  w.kv("clients", static_cast<std::uint64_t>(cfg.clients));
  w.kv("kills", cfg.kill_client ? cfg.kills : 0);
  w.kv("generation", heap.generation());
  w.kv("backend", heap.backend().mode_name());
  w.kv("lanes", static_cast<std::uint64_t>(cfg.lanes));
  w.kv("rings", rings != nullptr);
  w.kv("ok", vr.ok);
  w.kv("enqueued", vr.enqueued);
  w.kv("dequeued", vr.dequeued);
  w.kv("remaining", vr.remaining);
  w.kv("pendings_settled", static_cast<std::uint64_t>(vr.pendings_settled));
  w.kv("pendings_lost", static_cast<std::uint64_t>(vr.pendings_lost));
  w.kv("lease_settled", static_cast<std::uint64_t>(lease_settled));
  w.kv("lease_lost", static_cast<std::uint64_t>(lease_lost));
  w.kv("leases_acquired", acquires);
  w.kv("lease_reclaims", leases.total_reclaims());
  if (rings != nullptr) {
    w.kv("rings_settled", rings_settled);
    w.kv("ring_entries_settled", ring_entries_settled);
    w.kv("ring_torn_refused", ring_torn_refused);
    w.kv("rings_empty", rings_empty);
  }
  w.end_object();
  append_trace_line(cfg.trace_json, w.str());

  if (rings != nullptr && !rings_empty) {
    std::fprintf(stderr,
                 "crashrun verifier (storm %llu): ring VIOLATION: "
                 "submission ring not fully drained after settle\n",
                 static_cast<unsigned long long>(storm));
    return 2;
  }

  if (!vr.ok) {
    std::fprintf(stderr,
                 "crashrun verifier (storm %llu): exactly-once VIOLATION: "
                 "%s\n",
                 static_cast<unsigned long long>(storm), vr.error.c_str());
    return 2;
  }
  heap.close();
  return 0;
}

int client_verify(const Config& cfg, std::uint64_t storm) {
  try {
    dss::Session session = dss::Session::attach(cfg.path);
    const auto* rc = session.root<const RootConfig>();
    harness::Oracle oracle = session.open<harness::Oracle>(kOracleName);
    pmem::SlotLeaseTable leases =
        session.open<pmem::SlotLeaseTable>(kLeaseName);
    std::optional<pmem::UringTable> rings;
    if (rc->ring_capacity != 0) {
      rings.emplace(session.open<pmem::UringTable>(kRingsName));
    }
    pmem::UringTable* rp = rings.has_value() ? &*rings : nullptr;
    if (session.queue_kind(kQueueName) == queues::QueueRoot::kKindSingle) {
      auto q = session.open<queues::DssQueue<pmem::MmapContext>>(kQueueName);
      return verify_loop(cfg, session, q, oracle, leases, rp, storm);
    }
    auto q =
        session.open<queues::ShardedDssQueue<pmem::MmapContext>>(kQueueName);
    return verify_loop(cfg, session, q, oracle, leases, rp, storm);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crashrun verifier: %s\n", e.what());
    return 3;
  }
}

/// Fork one client (no wait — the storm runs them concurrently).
pid_t spawn_client(const Config& cfg, std::uint64_t seed) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    int rc = 125;
    try {
      rc = client_serve(cfg, seed);
    } catch (...) {
      rc = 126;
    }
    ::_exit(rc);
  }
  return pid;
}

bool run_client_storm(const Config& cfg, std::uint64_t storm,
                      std::uint64_t* crashes) {
  ::unlink(cfg.path.c_str());
  ::unlink(stop_path(cfg).c_str());
  const std::size_t capacity = client_oracle_capacity(cfg);
  const std::size_t nodes = client_nodes_per_thread(cfg);
  {
    // Creator: build, publish, and CLOSE before any client forks — a
    // forked child inheriting the mapping could never re-open the heap
    // (MAP_FIXED_NOREPLACE refuses the occupied base, by design).
    pmem::PersistentHeap::Options opt;
    opt.bytes = client_heap_bytes(cfg, capacity, nodes);
    opt.root_bytes = sizeof(RootConfig);
    pmem::PersistentHeap heap(cfg.path,
                              pmem::PersistentHeap::OpenMode::kCreate, opt);
    auto* rc = static_cast<RootConfig*>(heap.root());
    rc->threads = cfg.clients;
    rc->nodes_per_thread = nodes;
    rc->oracle_capacity = capacity;
    rc->trace_rings = cfg.clients + 1;
    rc->trace_records = kTraceRecordsPerRing;
    rc->lanes = cfg.lanes;
    rc->ring_capacity = 0;  // set below once the ring table is formatted
    pmem::MmapContext ctx(heap);
    harness::Oracle oracle(heap, cfg.clients, capacity);
    harness::Oracle::Root* oroot = oracle.make_root();
    queues::QueueRoot* qroot = nullptr;
    if (cfg.lanes == 0) {
      queues::DssQueue<pmem::MmapContext> q(ctx, cfg.clients, nodes);
      qroot = q.make_root();
    } else {
      queues::ShardedDssQueue<pmem::MmapContext> q(ctx, cfg.clients, nodes,
                                                   cfg.lanes);
      qroot = q.make_root();
    }
    void* lbase = heap.raw_alloc(
        pmem::SlotLeaseTable::bytes_for(cfg.clients), kCacheLineSize);
    pmem::SlotLeaseTable::format(lbase, cfg.clients, heap.backend());
    void* ubase = nullptr;
    if (cfg.rings) {
      ubase = heap.raw_alloc(
          pmem::UringTable::bytes_for(cfg.clients, kRingCapacity),
          kCacheLineSize);
      pmem::UringTable::format(ubase, cfg.clients, kRingCapacity,
                               heap.backend());
      rc->ring_capacity = kRingCapacity;
    }
    const std::size_t rbytes = trace::FlightRecorder::bytes_for(
        rc->trace_rings, rc->trace_records);
    void* rmem = heap.raw_alloc(rbytes, kCacheLineSize);
    (void)trace::FlightRecorder::format(rmem, rc->trace_rings,
                                        rc->trace_records);
    rc->recorder_addr = reinterpret_cast<std::uintptr_t>(rmem);
    heap.persist(rc, sizeof(RootConfig));
    heap.publish<queues::QueueRoot>(kQueueName, qroot);
    heap.publish<harness::Oracle::Root>(kOracleName, oroot);
    heap.publish<pmem::SlotLeaseTable::Header>(
        kLeaseName, static_cast<pmem::SlotLeaseTable::Header*>(lbase));
    if (ubase != nullptr) {
      heap.publish<pmem::UringTable::Header>(
          kRingsName, static_cast<pmem::UringTable::Header*>(ubase));
    }
    heap.close();
  }

  Xoshiro256 rng(hash_combine(cfg.seed, storm));
  std::vector<pid_t> kids(cfg.clients);
  for (std::size_t i = 0; i < cfg.clients; ++i) {
    const std::uint64_t s = rng.next();
    kids[i] = spawn_client(cfg, s);
  }

  bool failed = false;
  const std::uint64_t kills = cfg.kill_client ? cfg.kills : 0;
  for (std::uint64_t k = 0; k < kills && !failed; ++k) {
    ::usleep(1000 + static_cast<useconds_t>(rng.next_below(19000)));
    const std::size_t j = rng.next_below(cfg.clients);
    ::kill(kids[j], SIGKILL);
    // Reap BEFORE forking the replacement: a zombie still has a
    // /proc/<pid>/stat with the original birth stamp, so the replacement
    // could not prove the holder dead until the entry is gone.
    int status = 0;
    ::waitpid(kids[j], &status, 0);
    if (WIFSIGNALED(status)) {
      ++*crashes;
    } else {
      std::fprintf(stderr,
                   "client storm %llu: client %zu died on its own "
                   "(code=%d) — replay with --seed %llu\n",
                   static_cast<unsigned long long>(storm), j,
                   WIFEXITED(status) ? WEXITSTATUS(status) : -1,
                   static_cast<unsigned long long>(cfg.seed));
      failed = true;
    }
    const std::uint64_t s = rng.next();
    kids[j] = spawn_client(cfg, s);
  }

  // Stop the survivors and insist they end clean.
  const std::string stop = stop_path(cfg);
  const int sfd = ::open(stop.c_str(), O_WRONLY | O_CREAT, 0644);
  if (sfd >= 0) ::close(sfd);
  for (std::size_t i = 0; i < cfg.clients; ++i) {
    int status = 0;
    ::waitpid(kids[i], &status, 0);
    if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
      std::fprintf(stderr,
                   "client storm %llu: client %zu unclean end "
                   "(exited=%d code=%d sig=%d) — replay with --seed %llu\n",
                   static_cast<unsigned long long>(storm), i,
                   WIFEXITED(status),
                   WIFEXITED(status) ? WEXITSTATUS(status) : -1,
                   WIFSIGNALED(status) ? WTERMSIG(status) : 0,
                   static_cast<unsigned long long>(cfg.seed));
      failed = true;
    }
  }
  ::unlink(stop.c_str());
  if (failed) return false;

  const harness::ChildResult res =
      harness::run_in_child([&] { return client_verify(cfg, storm); });
  if (!res.clean()) {
    std::fprintf(stderr,
                 "client storm %llu: verifier failed (exited=%d code=%d "
                 "sig=%d) — replay with --seed %llu\n",
                 static_cast<unsigned long long>(storm), res.exited,
                 res.exit_code, res.term_signal,
                 static_cast<unsigned long long>(cfg.seed));
    return false;
  }
  return true;
}

bool run_one_storm(const Config& cfg, std::uint64_t storm,
                   std::uint64_t* crashes) {
  ::unlink(cfg.path.c_str());
  const std::size_t capacity = oracle_capacity_for(cfg);
  {
    pmem::PersistentHeap::Options opt;
    opt.bytes = heap_bytes_for(cfg, capacity);
    opt.root_bytes = sizeof(RootConfig);
    pmem::PersistentHeap heap(cfg.path,
                              pmem::PersistentHeap::OpenMode::kCreate, opt);
    auto* rc = static_cast<RootConfig*>(heap.root());
    rc->threads = cfg.threads;
    rc->nodes_per_thread = kNodesPerThread;
    rc->oracle_capacity = capacity;
    rc->trace_rings = cfg.threads + 1;  // one per worker + the main thread
    rc->trace_records = kTraceRecordsPerRing;
    rc->lanes = cfg.lanes;
    heap.persist(rc, sizeof(RootConfig));
    pmem::MmapContext ctx(heap);
    if (cfg.lanes == 0) {
      queues::DssQueue<pmem::MmapContext> q(ctx, cfg.threads,
                                            kNodesPerThread);
      harness::Oracle oracle(heap, cfg.threads, capacity);
      (void)heap_recorder(ctx, *rc, /*create=*/true);
    } else {
      queues::ShardedDssQueue<pmem::MmapContext> q(ctx, cfg.threads,
                                                   kNodesPerThread, cfg.lanes);
      harness::Oracle oracle(heap, cfg.threads, capacity);
      (void)heap_recorder(ctx, *rc, /*create=*/true);
    }
    heap.close();
  }

  Xoshiro256 rng(hash_combine(cfg.seed, storm));
  for (std::uint64_t k = 0; k <= cfg.kids; ++k) {
    const bool final_child = k == cfg.kids;
    // Crash somewhere inside the workload's point stream; a countdown that
    // overshoots simply yields an uncrashed generation (still audited).
    const auto countdown = final_child
                               ? std::int64_t{0}
                               : static_cast<std::int64_t>(1 + rng.next_below(
                                     cfg.threads * cfg.ops_per_thread * 12));
    const std::uint64_t child_seed = rng.next();
    const harness::ChildResult res = harness::run_in_child([&] {
      return child_run(cfg, child_seed, countdown, final_child, storm, k);
    });
    if (res.sigkilled()) {
      ++*crashes;
      continue;
    }
    if (!res.clean()) {
      std::fprintf(stderr,
                   "storm %llu child %llu: unexpected end (exited=%d "
                   "code=%d signal=%d) — replay with --seed %llu\n",
                   static_cast<unsigned long long>(storm),
                   static_cast<unsigned long long>(k), res.exited,
                   res.exit_code, res.term_signal,
                   static_cast<unsigned long long>(cfg.seed));
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  bool lanes_from_flag = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "crashrun: %s needs a value\n", a.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (a == "--file") {
      cfg.path = next();
    } else if (a == "--storms") {
      cfg.storms = std::strtoull(next(), nullptr, 10);
    } else if (a == "--kids") {
      cfg.kids = std::strtoull(next(), nullptr, 10);
    } else if (a == "--threads") {
      cfg.threads = std::strtoull(next(), nullptr, 10);
    } else if (a == "--ops") {
      cfg.ops_per_thread = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--lanes") {
      cfg.lanes = std::strtoull(next(), nullptr, 10);
      lanes_from_flag = true;
    } else if (a == "--clients") {
      cfg.clients = std::strtoull(next(), nullptr, 10);
    } else if (a == "--kill-client") {
      cfg.kill_client = true;
    } else if (a == "--rings") {
      cfg.rings = true;
    } else if (a == "--kills") {
      cfg.kills = std::strtoull(next(), nullptr, 10);
    } else if (a == "--trace-json") {
      cfg.trace_json = next();
    } else if (a == "--perfetto") {
      cfg.perfetto = next();
    } else if (a == "--keep-file") {
      cfg.keep_file = true;
    } else {
      std::fprintf(
          stderr,
          "usage: crashrun [--file PATH] [--storms N] [--kids K]\n"
          "                [--threads T] [--ops N] [--seed S]\n"
          "                [--lanes L] [--clients N] [--kill-client]\n"
          "                [--rings] [--kills K] [--trace-json PATH]\n"
          "                [--perfetto PATH] [--keep-file]\n"
          "  --lanes 0 (default) tortures the single-lane DSS queue;\n"
          "  --lanes L>=1 the sharded queue with L lanes (DSSQ_LANES is\n"
          "  honored when the flag is absent).\n"
          "  --clients N switches to the multi-process serving storm: N\n"
          "  concurrent client processes adopt one queue through the heap\n"
          "  directory and lease detectability slots; with --kill-client,\n"
          "  --kills K clients are SIGKILLed per storm at random 1-20 ms\n"
          "  intervals and replacements must reclaim the dead leases.\n"
          "  --rings (client storms only) serves every op through the\n"
          "  slot's persistent submission/completion ring (dss::Session +\n"
          "  UringTable), so kills can orphan submitted-but-unexecuted\n"
          "  entries; reclaimers must settle the orphan's ring before the\n"
          "  slot is reissued.\n");
      return a == "--help" || a == "-h" ? 0 : 64;
    }
  }

  if (!lanes_from_flag) {
    const char* v = std::getenv("DSSQ_LANES");
    if (v != nullptr && *v != '\0') {
      cfg.lanes = std::strtoull(v, nullptr, 10);
    }
  }
  cfg.lanes = std::min<std::size_t>(cfg.lanes, queues::kMaxLanes);

  if (cfg.clients > 0) {
    std::printf(
        "crashrun: %llu client storms x %zu concurrent clients, "
        "%llu SIGKILLs each, %zu ops budget, seed %llu, queue %s, "
        "serving %s\n  heap file: %s\n",
        static_cast<unsigned long long>(cfg.storms), cfg.clients,
        static_cast<unsigned long long>(cfg.kill_client ? cfg.kills : 0),
        cfg.ops_per_thread, static_cast<unsigned long long>(cfg.seed),
        cfg.lanes == 0
            ? "dss (single lane)"
            : ("dss_sharded x" + std::to_string(cfg.lanes)).c_str(),
        cfg.rings ? "async rings" : "direct", cfg.path.c_str());
    std::uint64_t crashes = 0;
    for (std::uint64_t s = 0; s < cfg.storms; ++s) {
      if (!run_client_storm(cfg, s, &crashes)) {
        std::printf("FAILED at client storm %llu (seed %llu)\n",
                    static_cast<unsigned long long>(s),
                    static_cast<unsigned long long>(cfg.seed));
        return 1;
      }
      std::printf(
          "  storm %llu/%llu: %llu client kills so far, every lease "
          "reclaimed, exactly-once\n",
          static_cast<unsigned long long>(s + 1),
          static_cast<unsigned long long>(cfg.storms),
          static_cast<unsigned long long>(crashes));
    }
    if (!cfg.keep_file) ::unlink(cfg.path.c_str());
    std::printf(
        "done: %llu client storms, %llu SIGKILLed clients, every recovery "
        "exactly-once\n",
        static_cast<unsigned long long>(cfg.storms),
        static_cast<unsigned long long>(crashes));
    return 0;
  }

  std::printf(
      "crashrun: %llu storms x %llu SIGKILLed generations, %zu threads, "
      "%zu ops/thread, seed %llu, queue %s\n  heap file: %s\n",
      static_cast<unsigned long long>(cfg.storms),
      static_cast<unsigned long long>(cfg.kids), cfg.threads,
      cfg.ops_per_thread, static_cast<unsigned long long>(cfg.seed),
      cfg.lanes == 0 ? "dss (single lane)"
                     : ("dss_sharded x" + std::to_string(cfg.lanes)).c_str(),
      cfg.path.c_str());

  std::uint64_t crashes = 0;
  for (std::uint64_t s = 0; s < cfg.storms; ++s) {
    if (!run_one_storm(cfg, s, &crashes)) {
      std::printf("FAILED at storm %llu (seed %llu)\n",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(cfg.seed));
      return 1;
    }
    if ((s + 1) % 10 == 0) {
      std::printf("  %llu/%llu storms, %llu real crashes, all exactly-once\n",
                  static_cast<unsigned long long>(s + 1),
                  static_cast<unsigned long long>(cfg.storms),
                  static_cast<unsigned long long>(crashes));
    }
  }
  if (!cfg.keep_file) ::unlink(cfg.path.c_str());
  std::printf(
      "done: %llu storms, %llu SIGKILL crashes injected, every recovery "
      "exactly-once\n",
      static_cast<unsigned long long>(cfg.storms),
      static_cast<unsigned long long>(crashes));
  return 0;
}
