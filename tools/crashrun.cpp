// crashrun — cross-process crash-restart torture for the DSS queue.
//
//   crashrun [--file PATH] [--storms N] [--kids K] [--threads T]
//            [--ops N] [--seed S] [--trace-json PATH] [--keep-file]
//
// Each storm drives one heap file through several process lifetimes:
//
//   parent   creates the PersistentHeap + queue + oracle, closes cleanly;
//   kid 0..K forked children each open the SAME file, attach, run Figure-6
//            recovery, audit exactly-once against the persisted oracle,
//            then run a multithreaded detectable workload with a KillSwitch
//            armed at a seed-randomized crash point — and die by SIGKILL
//            mid-operation (no destructors, no flushes);
//   final    one last child recovers, audits, and closes the heap cleanly.
//
// Unlike crash_torture (in-process, simulated persistence adversary), every
// recovery here reads exactly the bytes the kernel kept for a process that
// really died.  Any lost or duplicated value aborts with a replayable seed.
// With --trace-json, every recovering child appends a JSONL record of its
// RecoveryTrace and audit verdicts (uploaded as a CI artifact).

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "harness/fork_crash.hpp"
#include "pmem/persistent_heap.hpp"
#include "queues/dss_queue.hpp"

using namespace dssq;

namespace {

struct Config {
  std::string path = "/tmp/crashrun.heap";
  std::string trace_json;  // empty = no trace
  std::uint64_t storms = 20;
  std::uint64_t kids = 3;  // crashed generations per storm
  std::size_t threads = 4;
  std::size_t ops_per_thread = 150;
  std::uint64_t seed = 1;
  bool keep_file = false;
};

/// Geometry persisted in the heap's root block so every recovering process
/// replays the allocation sequence with the crashed process's parameters.
struct RootConfig {
  std::uint64_t threads = 0;
  std::uint64_t nodes_per_thread = 0;
  std::uint64_t oracle_capacity = 0;
};

constexpr std::size_t kNodesPerThread = 1024;

std::size_t heap_bytes_for(const Config& cfg, std::size_t capacity) {
  const std::size_t queue = kCacheLineSize * (3 + cfg.threads) +
                            kCacheLineSize * cfg.threads * kNodesPerThread;
  const std::size_t oracle =
      kCacheLineSize * cfg.threads * (1 + capacity);
  return 2 * (queue + oracle) + (1u << 20);
}

std::size_t oracle_capacity_for(const Config& cfg) {
  // Every generation (kids + final) may begin up to ops_per_thread entries
  // per thread, plus slack for settled pendings.
  return (cfg.kids + 1) * cfg.ops_per_thread + 16;
}

void append_trace_line(const std::string& path, const std::string& line) {
  if (path.empty()) return;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return;
  const std::string full = line + "\n";
  // Single write so a SIGKILL mid-append at worst truncates one line.
  (void)!::write(fd, full.data(), full.size());
  ::close(fd);
}

void run_workload(queues::DssQueue<pmem::MmapContext>& q,
                  harness::Oracle& oracle, const RootConfig& rc,
                  std::size_t ops, std::uint64_t seed) {
  std::vector<std::thread> workers;
  workers.reserve(rc.threads);
  for (std::size_t t = 0; t < rc.threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(hash_combine(seed, t));
      for (std::size_t i = 0; i < ops; ++i) {
        if (rng.next_bool(0.5)) {
          const queues::Value v = oracle.begin_enqueue(t);
          q.prep_enqueue(t, v);
          q.exec_enqueue(t);
          oracle.complete_enqueue(t);
        } else {
          oracle.begin_dequeue(t);
          q.prep_dequeue(t);
          const queues::Value v = q.exec_dequeue(t);
          oracle.complete_dequeue(t, v);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

/// Body of every forked child: open → attach → recover → audit → workload
/// (→ clean close for the final generation).  Exit codes: 0 ok, 2 audit
/// violation, 3 open/attach error.  A SIGKILL from the armed KillSwitch
/// preempts all of it — which is the point.
int child_run(const Config& cfg, std::uint64_t seed, std::int64_t countdown,
              bool final_close, std::uint64_t storm, std::uint64_t child) {
  try {
    pmem::PersistentHeap heap(cfg.path,
                              pmem::PersistentHeap::OpenMode::kOpen);
    const auto* rc = static_cast<const RootConfig*>(heap.root());
    if (rc->threads == 0 || rc->threads > 1024) {
      std::fprintf(stderr, "crashrun child: root config looks corrupt\n");
      return 3;
    }
    pmem::MmapContext ctx(heap);
    harness::KillSwitch ks;
    queues::DssQueue<pmem::MmapContext> q(pmem::attach, ctx, rc->threads,
                                          rc->nodes_per_thread);
    harness::Oracle oracle(heap, rc->threads, rc->oracle_capacity);
    if (countdown > 0) {
      ctx.set_crash_hook(&harness::KillSwitch::hook, &ks);
      ks.arm(countdown);  // recovery + audit are inside the blast radius
    }
    q.recover();
    const harness::VerifyResult vr = harness::verify_exactly_once(q, oracle);

    json::Writer w;
    w.begin_object();
    w.kv("storm", storm);
    w.kv("child", child);
    w.kv("generation", heap.generation());
    w.kv("backend", ctx.backend_name());
    w.kv("prev_clean", heap.previous_shutdown_clean());
    w.kv("ok", vr.ok);
    w.kv("enqueued", vr.enqueued);
    w.kv("dequeued", vr.dequeued);
    w.kv("remaining", vr.remaining);
    w.kv("pendings_settled",
         static_cast<std::uint64_t>(vr.pendings_settled));
    w.kv("pendings_lost", static_cast<std::uint64_t>(vr.pendings_lost));
    const metrics::RecoveryTrace& rt = q.last_recovery();
    w.key("recovery");
    w.begin_object();
    w.kv("nodes_scanned", rt.nodes_scanned);
    w.kv("tags_repaired", rt.tags_repaired);
    w.kv("nodes_reclaimed", rt.nodes_reclaimed);
    w.kv("head_moved", rt.head_moved);
    w.kv("tail_moved", rt.tail_moved);
    w.end_object();
    w.end_object();
    append_trace_line(cfg.trace_json, w.str());

    if (!vr.ok) {
      std::fprintf(stderr,
                   "crashrun child (storm %llu gen %llu): exactly-once "
                   "VIOLATION: %s\n",
                   static_cast<unsigned long long>(storm),
                   static_cast<unsigned long long>(heap.generation()),
                   vr.error.c_str());
      return 2;
    }
    run_workload(q, oracle, *rc, cfg.ops_per_thread, seed);
    if (final_close) {
      ks.disarm();
      heap.close();
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crashrun child: %s\n", e.what());
    return 3;
  }
}

bool run_one_storm(const Config& cfg, std::uint64_t storm,
                   std::uint64_t* crashes) {
  ::unlink(cfg.path.c_str());
  const std::size_t capacity = oracle_capacity_for(cfg);
  {
    pmem::PersistentHeap::Options opt;
    opt.bytes = heap_bytes_for(cfg, capacity);
    opt.root_bytes = sizeof(RootConfig);
    pmem::PersistentHeap heap(cfg.path,
                              pmem::PersistentHeap::OpenMode::kCreate, opt);
    auto* rc = static_cast<RootConfig*>(heap.root());
    rc->threads = cfg.threads;
    rc->nodes_per_thread = kNodesPerThread;
    rc->oracle_capacity = capacity;
    heap.persist(rc, sizeof(RootConfig));
    pmem::MmapContext ctx(heap);
    queues::DssQueue<pmem::MmapContext> q(ctx, cfg.threads, kNodesPerThread);
    harness::Oracle oracle(heap, cfg.threads, capacity);
    heap.close();
  }

  Xoshiro256 rng(hash_combine(cfg.seed, storm));
  for (std::uint64_t k = 0; k <= cfg.kids; ++k) {
    const bool final_child = k == cfg.kids;
    // Crash somewhere inside the workload's point stream; a countdown that
    // overshoots simply yields an uncrashed generation (still audited).
    const auto countdown = final_child
                               ? std::int64_t{0}
                               : static_cast<std::int64_t>(1 + rng.next_below(
                                     cfg.threads * cfg.ops_per_thread * 12));
    const std::uint64_t child_seed = rng.next();
    const harness::ChildResult res = harness::run_in_child([&] {
      return child_run(cfg, child_seed, countdown, final_child, storm, k);
    });
    if (res.sigkilled()) {
      ++*crashes;
      continue;
    }
    if (!res.clean()) {
      std::fprintf(stderr,
                   "storm %llu child %llu: unexpected end (exited=%d "
                   "code=%d signal=%d) — replay with --seed %llu\n",
                   static_cast<unsigned long long>(storm),
                   static_cast<unsigned long long>(k), res.exited,
                   res.exit_code, res.term_signal,
                   static_cast<unsigned long long>(cfg.seed));
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "crashrun: %s needs a value\n", a.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (a == "--file") {
      cfg.path = next();
    } else if (a == "--storms") {
      cfg.storms = std::strtoull(next(), nullptr, 10);
    } else if (a == "--kids") {
      cfg.kids = std::strtoull(next(), nullptr, 10);
    } else if (a == "--threads") {
      cfg.threads = std::strtoull(next(), nullptr, 10);
    } else if (a == "--ops") {
      cfg.ops_per_thread = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--trace-json") {
      cfg.trace_json = next();
    } else if (a == "--keep-file") {
      cfg.keep_file = true;
    } else {
      std::fprintf(
          stderr,
          "usage: crashrun [--file PATH] [--storms N] [--kids K]\n"
          "                [--threads T] [--ops N] [--seed S]\n"
          "                [--trace-json PATH] [--keep-file]\n");
      return a == "--help" || a == "-h" ? 0 : 64;
    }
  }

  std::printf(
      "crashrun: %llu storms x %llu SIGKILLed generations, %zu threads, "
      "%zu ops/thread, seed %llu\n  heap file: %s\n",
      static_cast<unsigned long long>(cfg.storms),
      static_cast<unsigned long long>(cfg.kids), cfg.threads,
      cfg.ops_per_thread, static_cast<unsigned long long>(cfg.seed),
      cfg.path.c_str());

  std::uint64_t crashes = 0;
  for (std::uint64_t s = 0; s < cfg.storms; ++s) {
    if (!run_one_storm(cfg, s, &crashes)) {
      std::printf("FAILED at storm %llu (seed %llu)\n",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(cfg.seed));
      return 1;
    }
    if ((s + 1) % 10 == 0) {
      std::printf("  %llu/%llu storms, %llu real crashes, all exactly-once\n",
                  static_cast<unsigned long long>(s + 1),
                  static_cast<unsigned long long>(cfg.storms),
                  static_cast<unsigned long long>(crashes));
    }
  }
  if (!cfg.keep_file) ::unlink(cfg.path.c_str());
  std::printf(
      "done: %llu storms, %llu SIGKILL crashes injected, every recovery "
      "exactly-once\n",
      static_cast<unsigned long long>(cfg.storms),
      static_cast<unsigned long long>(crashes));
  return 0;
}
