# Test driver for the pmem_lint.sarif ctest: run the lint with --sarif over
# the library source, then structurally validate the output.  The lint may
# exit 0 or 1 (findings); only the SARIF file's validity is under test here
# (pmem_lint.src gates cleanliness).
execute_process(COMMAND ${LINT} --sarif ${OUT} ${SRC} RESULT_VARIABLE lint_rc)
if(lint_rc GREATER 1)
  message(FATAL_ERROR "pmem_lint failed to run (rc=${lint_rc})")
endif()
execute_process(COMMAND ${PYTHON} ${CHECKER} ${OUT} RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "SARIF validation failed (rc=${check_rc})")
endif()
