// Minimal C++ tokenizer for pmem_lint.
//
// The lint is a token/structure scanner, not a compiler frontend: it needs
// identifiers, punctuation, brace/paren structure, line numbers, and the
// repo's `// dssq-lint:` annotation comments.  Everything else (literals,
// preprocessor text) is reduced to opaque tokens.  No libclang — the tool
// must build in the bare CI image and on contributors' machines with
// nothing but a C++20 compiler.
#pragma once

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pmem_lint {

enum class TokKind {
  kIdent,        // identifiers and keywords
  kNumber,       // integer / floating literals (value parsed for hex rule)
  kPunct,        // operators and punctuation, longest-match (e.g. "->", "<<")
  kString,       // string / char literal (contents dropped)
  kPreprocessor, // one whole # line (continuations folded), text kept
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
  /// For kNumber: the literal's value if it fits in 64 bits (hex tag-bit
  /// rule); 0 when unparseable.
  std::uint64_t value = 0;
};

/// A `// dssq-lint: ...` comment, kept out of the token stream but reported
/// with its line so annotation handling can attach it to code.
struct LintComment {
  std::string text;  // everything after "dssq-lint:"
  int line = 0;
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<LintComment> lint_comments;
};

inline bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char punctuators the scanner must not split (longest match first).
inline const char* kPuncts[] = {
    "->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "&=", "|=", "^=",
};

inline LexOutput lex(std::string_view src) {
  LexOutput out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.  Line comments are scanned for the annotation marker.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = i;
      while (end < n && src[end] != '\n') ++end;
      std::string_view body = src.substr(i + 2, end - i - 2);
      // Only a comment that *starts* with the marker (after `///` and
      // whitespace) is a directive: prose that merely mentions
      // `dssq-lint:` mid-sentence — e.g. the lint's own documentation —
      // must not parse as (and then fail as) an annotation.
      std::size_t lead = 0;
      while (lead < body.size() && body[lead] == '/') ++lead;  // `///` docs
      while (lead < body.size() &&
             std::isspace(static_cast<unsigned char>(body[lead]))) {
        ++lead;
      }
      if (body.substr(lead).starts_with("dssq-lint:")) {
        out.lint_comments.push_back(
            {std::string(body.substr(lead + 10)), line});
      }
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i < n ? i + 2 : n;
      continue;
    }
    // Preprocessor line (with backslash continuations), kept whole.
    if (c == '#') {
      std::string text;
      const int start_line = line;
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          text += ' ';
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i];
        ++i;
      }
      out.tokens.push_back({TokKind::kPreprocessor, text, start_line, 0});
      continue;
    }
    // String and char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({TokKind::kString, std::string(1, quote), line, 0});
      continue;
    }
    if (ident_start(c)) {
      std::size_t end = i;
      while (end < n && ident_char(src[end])) ++end;
      out.tokens.push_back(
          {TokKind::kIdent, std::string(src.substr(i, end - i)), line, 0});
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = i;
      while (end < n && (ident_char(src[end]) || src[end] == '\'' ||
                         ((src[end] == '+' || src[end] == '-') && end > i &&
                          (src[end - 1] == 'e' || src[end - 1] == 'E' ||
                           src[end - 1] == 'p' || src[end - 1] == 'P')))) {
        ++end;
      }
      std::string text(src.substr(i, end - i));
      std::string digits;
      for (char d : text) {
        if (d != '\'') digits += d;
      }
      std::uint64_t value = 0;
      try {
        if (digits.size() > 2 && (digits[1] == 'x' || digits[1] == 'X')) {
          value = std::stoull(digits.substr(2), nullptr, 16);
        } else if (digits.find('.') == std::string::npos &&
                   digits.find('e') == std::string::npos &&
                   digits.find('E') == std::string::npos) {
          // Strip integer suffixes (u, l, z combinations).
          std::size_t last = digits.size();
          while (last > 0 && !std::isdigit(static_cast<unsigned char>(
                                 digits[last - 1]))) {
            --last;
          }
          if (last > 0) value = std::stoull(digits.substr(0, last), nullptr, 0);
        }
      } catch (...) {
        value = 0;  // out-of-range literal: not interesting to the rules
      }
      out.tokens.push_back({TokKind::kNumber, text, line, value});
      i = end;
      continue;
    }
    // Punctuation, longest match.
    std::string p(1, c);
    for (const char* cand : kPuncts) {
      const std::size_t len = std::string_view(cand).size();
      if (src.substr(i, len) == cand) {
        p = cand;
        break;
      }
    }
    out.tokens.push_back({TokKind::kPunct, p, line, 0});
    i += p.size();
  }
  return out;
}

}  // namespace pmem_lint
