// Statement-level control-flow graphs for pmem_lint.
//
// The linear token scan that rules.hpp grew up on cannot tell "persisted
// later in the function" from "persisted on every path out of the
// function" — a store whose flush sits on one arm of an `if` passed.  This
// file upgrades the lint's view of a function from a token interval to a
// small CFG: one node per statement (plus synthetic join/label nodes),
// edges for `if`/`else`, the three loop forms, `switch` with fall-through,
// `break`/`continue`/`return`/`throw`, and top-level short-circuit
// `&&`/`||` operands (each subsequent operand becomes a maybe-executed
// node of its own).  The dataflow framework in dataflow.hpp runs rule
// analyses over these graphs.
//
// Still a structure scanner, not a compiler frontend: types are unknown,
// templates are text, `goto` is modeled conservatively as "leaves the
// function".  Two deliberate refinements matter to the rules:
//
//   * Branch-correlated conditions.  `if (p->next.compare_exchange_strong
//     (e, n)) { persist(...) }` persists only on the success arm — and
//     only the success arm wrote memory.  When a condition is a single
//     (possibly `!`-negated) CAS / `exchange(true)` / `test_and_set`
//     call, its event tokens are re-homed onto the arm where the write
//     actually happened, so the persist-coverage rules neither miss the
//     uncovered success path nor false-positive on the no-op failure
//     path.
//
//   * Lambdas are functions.  A lambda body runs when the callee decides,
//     not where it is written, so each body is carved out of its
//     enclosing statement (a "hole" in that node's token range) and built
//     as its own Cfg, inheriting the enclosing function's resolve/exec
//     classification for the rules keyed on function names.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lexer.hpp"

namespace pmem_lint {

inline constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

/// One CFG node: a token range with optional holes (nested lambda bodies
/// and re-homed condition events, which event extraction must skip).
struct CfgNode {
  std::size_t begin = 0;  // token range [begin, end)
  std::size_t end = 0;
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  std::vector<std::size_t> succ;
  int line = 0;
  const char* label = "stmt";  // selftest/debug taxonomy, not semantics
};

struct Cfg {
  std::string name;         // enclosing declarator name; "" for a lambda
  bool is_resolve = false;  // name (or enclosing fn for lambdas) resolve_*
  bool is_exec = false;     // likewise exec_*
  int line = 0;
  std::vector<CfgNode> nodes;
  std::size_t entry = 0;
  std::size_t exit = 0;  // single synthetic exit; returns edge into it

  /// Nodes reachable from entry (rules skip dead code, e.g. the
  /// fall-through join of an infinite loop whose only exits return).
  std::vector<bool> reachable() const {
    std::vector<bool> seen(nodes.size(), false);
    std::vector<std::size_t> stack{entry};
    seen[entry] = true;
    while (!stack.empty()) {
      const std::size_t n = stack.back();
      stack.pop_back();
      for (std::size_t s : nodes[n].succ) {
        if (!seen[s]) {
          seen[s] = true;
          stack.push_back(s);
        }
      }
    }
    return seen;
  }
};

/// Index of the token after the brace-balanced range opened at `open`
/// (toks[open] must be '{', '(' or '['); tokens.size() when unbalanced.
inline std::size_t match_bracket(const std::vector<Token>& toks,
                                 std::size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "{" ? "}" : o == "(" ? ")" : "]";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == close && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Shared with pmem_lint.cpp: keywords whose parenthesized head is not a
/// function parameter list.
inline bool cfg_control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch";
}

/// Does the '{' at `i` open a function (or lambda) body?  Walks back over
/// trailing specifiers / return types / ctor-initializers to the ')' of a
/// parameter list whose '(' is not preceded by a control keyword.  When
/// `name_out` is non-null it receives the declarator name ("" for
/// lambdas).
inline bool brace_opens_function(const std::vector<Token>& toks,
                                 std::size_t i,
                                 std::string* name_out = nullptr) {
  std::size_t j = i;
  int depth = 0;
  while (j-- > 0) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct &&
        (t.text == ")" || t.text == "]" || t.text == ">")) {
      ++depth;
      continue;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == "(" || t.text == "[" || t.text == "<")) {
      if (depth == 0) return false;
      --depth;
      if (depth == 0 && t.text == "(") {
        if (j == 0) return true;
        const Token& prev = toks[j - 1];
        if (prev.kind == TokKind::kIdent) {
          if (cfg_control_keyword(prev.text)) return false;
          if (name_out != nullptr) *name_out = prev.text;
          return true;
        }
        // `](...)` = lambda; anything else = expression.
        if (prev.kind == TokKind::kPunct && prev.text == "]") {
          if (name_out != nullptr) name_out->clear();
          return true;
        }
        return false;
      }
      continue;
    }
    if (depth > 0) continue;
    if (t.kind == TokKind::kIdent || t.kind == TokKind::kNumber ||
        t.kind == TokKind::kString ||
        (t.kind == TokKind::kPunct &&
         (t.text == "," || t.text == ":" || t.text == "::" ||
          t.text == "->" || t.text == "&" || t.text == "&&" ||
          t.text == "*" || t.text == "."))) {
      continue;  // specifier, initializer list, or trailing return type
    }
    return false;
  }
  return false;
}

/// A condition consisting of one (optionally negated) write-returning call
/// whose outcome the branch tests: CAS (true = wrote), exchange(true) /
/// test_and_set (false = acquired, i.e. wrote).
struct CondWriteEvent {
  std::size_t begin = 0;  // token range of the call expression
  std::size_t end = 0;
  bool write_on_true = false;  // branch on which the write happened
};

/// Builds the Cfg for one function body and, recursively, separate Cfgs
/// for every lambda body inside it.  Usage:
///
///   CfgBuilder b(toks, out);
///   next = b.build(open_brace_index, name, is_resolve, is_exec);
class CfgBuilder {
 public:
  CfgBuilder(const std::vector<Token>& toks, std::vector<Cfg>& out)
      : toks_(toks), out_(out) {}

  /// `open` indexes the body's '{'.  Returns the index just past the
  /// matching '}'.  Appends this function's Cfg (and nested lambdas',
  /// depth-first) to the output vector.
  std::size_t build(std::size_t open, std::string name, bool is_resolve,
                    bool is_exec) {
    cfg_ = Cfg{};
    cfg_.name = std::move(name);
    cfg_.is_resolve = is_resolve;
    cfg_.is_exec = is_exec;
    cfg_.line = toks_[open].line;
    cfg_.entry = new_node(open, open, "entry");
    cfg_.exit = new_node(open, open, "exit");
    cur_ = cfg_.entry;
    const std::size_t next = parse_block(open);
    edge(cur_, cfg_.exit);
    out_.push_back(std::move(cfg_));
    return next;
  }

 private:
  struct LoopCtx {
    std::size_t cont = kNoNode;  // kNoNode inside switch (continue skips)
    std::size_t brk = kNoNode;
  };

  std::size_t new_node(std::size_t b, std::size_t e, const char* label) {
    CfgNode n;
    n.begin = b;
    n.end = e;
    n.line = b < toks_.size() ? toks_[b].line : 0;
    n.label = label;
    cfg_.nodes.push_back(std::move(n));
    return cfg_.nodes.size() - 1;
  }

  void edge(std::size_t from, std::size_t to) {
    if (from == kNoNode || to == kNoNode) return;
    for (std::size_t s : cfg_.nodes[from].succ) {
      if (s == to) return;
    }
    cfg_.nodes[from].succ.push_back(to);
  }

  // ---- statements ---------------------------------------------------------

  /// `open` at '{'; parses statements to the matching '}'.
  std::size_t parse_block(std::size_t open) {
    std::size_t i = open + 1;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct && t.text == "}") return i + 1;
      i = parse_stmt(i);
    }
    return i;
  }

  std::size_t parse_stmt(std::size_t i) {
    const Token& t = toks_[i];
    if (t.kind == TokKind::kPreprocessor) return i + 1;
    if (t.kind == TokKind::kPunct && t.text == ";") return i + 1;
    if (t.kind == TokKind::kPunct && t.text == "{") {
      // Nested plain block.
      return parse_block(i);
    }
    if (t.kind == TokKind::kIdent) {
      if (t.text == "if") return parse_if(i);
      if (t.text == "while") return parse_while(i);
      if (t.text == "do") return parse_do(i);
      if (t.text == "for") return parse_for(i);
      if (t.text == "switch") return parse_switch(i);
      if (t.text == "try") return parse_try(i);
      if (t.text == "return" || t.text == "throw") {
        const std::size_t next = emit_simple(i + 1, "return");
        edge(cur_, cfg_.exit);
        cur_ = kNoNode;
        return next;
      }
      if (t.text == "break" || t.text == "continue") {
        std::size_t target = kNoNode;
        for (std::size_t k = loops_.size(); k-- > 0;) {
          if (t.text == "break") {
            target = loops_[k].brk;
            break;
          }
          if (loops_[k].cont != kNoNode) {
            target = loops_[k].cont;
            break;
          }
        }
        edge(cur_, target);
        cur_ = kNoNode;
        return skip_past_semicolon(i + 1);
      }
      if (t.text == "goto") {
        // Conservative: a goto may leave every structured region; treat it
        // like a return so no analysis assumes fall-through.
        edge(cur_, cfg_.exit);
        cur_ = kNoNode;
        return skip_past_semicolon(i + 1);
      }
      if (t.text == "case" || t.text == "default") {
        // Labels outside parse_switch (shouldn't happen) — skip the label.
        std::size_t j = i + 1;
        while (j < toks_.size() &&
               !(toks_[j].kind == TokKind::kPunct && toks_[j].text == ":")) {
          ++j;
        }
        return j + 1;
      }
      if (t.text == "else") {
        // Dangling else (parse_if consumes its own): skip the keyword.
        return i + 1;
      }
    }
    return emit_simple(i, "stmt");
  }

  /// Scans one expression statement (or a return operand when `i` is just
  /// past `return`), carving lambda bodies into sub-Cfgs and modeling
  /// top-level `&&`/`||` as maybe-executed operand nodes.  Returns the
  /// index past the terminating ';'.
  std::size_t emit_simple(std::size_t i, const char* label) {
    std::vector<std::pair<std::size_t, std::size_t>> holes;
    std::size_t j = i;
    int depth = 0;
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kPreprocessor) {
        ++j;
        continue;
      }
      if (t.kind != TokKind::kPunct) {
        ++j;
        continue;
      }
      if (t.text == "(" || t.text == "[") {
        ++depth;
        ++j;
        continue;
      }
      if (t.text == ")" || t.text == "]") {
        if (depth == 0) break;  // tolerate malformed input
        --depth;
        ++j;
        continue;
      }
      if (t.text == "{") {
        std::string lambda_name;
        if (brace_opens_function(toks_, j, &lambda_name)) {
          // Deferred body: separate Cfg, hole in this statement.
          CfgBuilder sub(toks_, out_);
          const std::size_t after =
              sub.build(j, "", cfg_.is_resolve, cfg_.is_exec);
          holes.emplace_back(j, after);
          j = after;
          continue;
        }
        // Braced initializer: part of this statement.
        j = match_bracket(toks_, j);
        continue;
      }
      if (t.text == "}" && depth == 0) break;  // end of enclosing block
      if (t.text == ";" && depth == 0) {
        ++j;
        break;
      }
      ++j;
    }
    emit_expr(i, j, std::move(holes), label);
    return j;
  }

  /// Emits CFG nodes for expression range [begin,end): one node, or a
  /// short-circuit chain when top-level `&&`/`||` are present.  Leaves
  /// `cur_` at the expression's single exit node.
  void emit_expr(std::size_t begin, std::size_t end,
                 std::vector<std::pair<std::size_t, std::size_t>> holes,
                 const char* label) {
    if (begin >= end) return;
    const std::vector<std::size_t> splits = split_points(begin, end, holes);
    if (splits.empty()) {
      const std::size_t n = new_node(begin, end, label);
      cfg_.nodes[n].holes = std::move(holes);
      edge(cur_, n);
      cur_ = n;
      return;
    }
    auto holes_in = [&](std::size_t b, std::size_t e) {
      std::vector<std::pair<std::size_t, std::size_t>> hs;
      for (const auto& h : holes) {
        if (h.first >= b && h.second <= e) hs.push_back(h);
      }
      return hs;
    };
    // A && B && C: A unconditional; every later operand may be skipped.
    std::size_t part_begin = begin;
    std::size_t first = kNoNode;
    std::vector<std::size_t> tails;
    std::size_t prev = kNoNode;
    for (std::size_t k = 0; k <= splits.size(); ++k) {
      const std::size_t part_end = k < splits.size() ? splits[k] : end;
      const std::size_t n =
          new_node(part_begin, part_end,
                   prev == kNoNode ? label : "shortcircuit");
      cfg_.nodes[n].holes = holes_in(part_begin, part_end);
      if (prev == kNoNode) {
        first = n;
        edge(cur_, n);
      } else {
        edge(prev, n);
        tails.push_back(prev);
      }
      prev = n;
      part_begin = part_end + 1;  // skip the && / || token
    }
    const std::size_t join = new_node(end, end, "join");
    edge(prev, join);
    for (std::size_t tail : tails) edge(tail, join);
    if (first != prev) edge(first, join);
    cur_ = join;
  }

  /// Top-level `&&` / `||` positions in [begin,end) outside holes.
  std::vector<std::size_t> split_points(
      std::size_t begin, std::size_t end,
      const std::vector<std::pair<std::size_t, std::size_t>>& holes) const {
    std::vector<std::size_t> out;
    int depth = 0;
    for (std::size_t j = begin; j < end; ++j) {
      bool in_hole = false;
      for (const auto& h : holes) {
        if (j >= h.first && j < h.second) {
          in_hole = true;
          break;
        }
      }
      if (in_hole) continue;
      const Token& t = toks_[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth == 0 && (t.text == "&&" || t.text == "||")) {
        // `&&` directly after an identifier/closing bracket is the
        // operator; after another operator or '(' it is an rvalue
        // reference — only the operator splits control flow.
        if (j > begin) {
          const Token& p = toks_[j - 1];
          const bool operand_before =
              p.kind == TokKind::kIdent || p.kind == TokKind::kNumber ||
              p.kind == TokKind::kString ||
              (p.kind == TokKind::kPunct &&
               (p.text == ")" || p.text == "]"));
          if (operand_before) out.push_back(j);
        }
      }
    }
    return out;
  }

  // ---- conditions ---------------------------------------------------------

  struct CondResult {
    std::size_t exit = kNoNode;  // node both branches fork from
    bool has_write = false;
    CondWriteEvent write;
    bool always_true = false;  // `while (true)`, `for (;;)`
  };

  /// Parses the condition token range [begin,end) (already extracted from
  /// its parentheses).  Emits nodes, detects the branch-correlated write
  /// pattern and constant-true conditions.
  CondResult parse_cond_range(std::size_t begin, std::size_t end) {
    CondResult res;
    if (begin >= end) {
      res.always_true = true;  // for (;;)
      res.exit = cur_;
      return res;
    }
    if (end - begin == 1 &&
        (toks_[begin].text == "true" || toks_[begin].text == "1")) {
      res.always_true = true;
      // Still a node: `while (true)` has no events, but keep lines sane.
      const std::size_t n = new_node(begin, end, "cond");
      edge(cur_, n);
      cur_ = n;
      res.exit = cur_;
      return res;
    }
    // Branch-correlated write: the last top-level `&&` conjunct (or the
    // whole condition) is `[!] expr.compare_exchange_*(...)`,
    // `[!] expr.exchange(true, ...)` or `[!] expr.test_and_set(...)`.
    std::vector<std::pair<std::size_t, std::size_t>> no_holes;
    const std::vector<std::size_t> splits = split_points(begin, end, no_holes);
    bool or_present = false;
    for (std::size_t s : splits) {
      if (toks_[s].text == "||") or_present = true;
    }
    std::size_t last_begin = splits.empty() ? begin : splits.back() + 1;
    if (!or_present) {
      std::size_t b = last_begin;
      bool negated = false;
      if (b < end && toks_[b].kind == TokKind::kPunct &&
          toks_[b].text == "!") {
        negated = true;
        ++b;
      }
      if (is_write_call(b, end)) {
        bool success_is_true = write_succeeds_on_true(b);
        if (negated) success_is_true = !success_is_true;
        res.has_write = true;
        res.write.begin = b;
        res.write.end = end;
        res.write.write_on_true = success_is_true;
      }
    }
    std::vector<std::pair<std::size_t, std::size_t>> holes;
    if (res.has_write) holes.emplace_back(res.write.begin, res.write.end);
    emit_expr(begin, end, std::move(holes), "cond");
    res.exit = cur_;
    return res;
  }

  /// Whole range [b,end) is one postfix member call to a write-returning
  /// primitive (trailing `== x` comparisons disqualify — outcome unclear).
  bool is_write_call(std::size_t b, std::size_t end) const {
    for (std::size_t j = b; j < end; ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokKind::kIdent &&
          (t.text == "compare_exchange_strong" ||
           t.text == "compare_exchange_weak" || t.text == "test_and_set" ||
           t.text == "exchange") &&
          j + 1 < end && toks_[j + 1].text == "(" && j > b &&
          toks_[j - 1].kind == TokKind::kPunct &&
          (toks_[j - 1].text == "." || toks_[j - 1].text == "->")) {
        if (t.text == "exchange" &&
            !(j + 2 < end && toks_[j + 2].text == "true")) {
          return false;  // only exchange(true) is a lock acquire
        }
        // The call's ')' must end the range.
        const std::size_t after = match_bracket_bounded(j + 1, end);
        return after == end;
      }
    }
    return false;
  }

  std::size_t match_bracket_bounded(std::size_t open, std::size_t end) const {
    int depth = 0;
    for (std::size_t j = open; j < end; ++j) {
      if (toks_[j].kind != TokKind::kPunct) continue;
      if (toks_[j].text == "(") ++depth;
      if (toks_[j].text == ")" && --depth == 0) return j + 1;
    }
    return end + 1;
  }

  /// For an un-negated call starting at `b`: does `true` mean "the write
  /// happened"?  CAS: yes.  exchange(true)/test_and_set: the call returns
  /// the *old* value, so `false` means the lock was actually taken.
  bool write_succeeds_on_true(std::size_t b) const {
    for (std::size_t j = b; j < toks_.size(); ++j) {
      if (toks_[j].kind == TokKind::kIdent) {
        if (toks_[j].text == "compare_exchange_strong" ||
            toks_[j].text == "compare_exchange_weak") {
          return true;
        }
        if (toks_[j].text == "exchange" || toks_[j].text == "test_and_set") {
          return false;
        }
      }
    }
    return true;
  }

  /// Synthetic node holding the re-homed condition write event.
  std::size_t write_event_node(const CondWriteEvent& w) {
    return new_node(w.begin, w.end, "cond-write");
  }

  // ---- structured statements ---------------------------------------------

  /// `(cond)` following toks_[i]; returns {cond_begin, cond_end, after_paren}.
  struct ParenRange {
    std::size_t begin = 0, end = 0, after = 0;
  };
  ParenRange paren_range(std::size_t open) const {
    ParenRange r;
    r.begin = open + 1;
    r.after = const_cast<CfgBuilder*>(this)->match_const(open);
    r.end = r.after - 1;
    return r;
  }
  std::size_t match_const(std::size_t open) const {
    return match_bracket(toks_, open);
  }

  std::size_t parse_if(std::size_t i) {
    std::size_t j = i + 1;
    // `if constexpr (...)`: both arms are still analyzed (the lint has no
    // template context; a rule firing in a discarded branch is annotated).
    if (j < toks_.size() && toks_[j].kind == TokKind::kIdent &&
        toks_[j].text == "constexpr") {
      ++j;
    }
    if (j >= toks_.size() || toks_[j].text != "(") return emit_simple(i, "stmt");
    const ParenRange pr = paren_range(j);
    const CondResult cond = parse_cond_range(pr.begin, pr.end);
    const std::size_t fork = cond.exit;

    // Then-branch.
    cur_ = fork;
    if (cond.has_write && cond.write.write_on_true) {
      const std::size_t wn = write_event_node(cond.write);
      edge(fork, wn);
      cur_ = wn;
    }
    std::size_t k = parse_stmt(pr.after);
    const std::size_t then_exit = cur_;

    // Else-branch.
    std::size_t else_exit;
    bool has_else = false;
    if (k < toks_.size() && toks_[k].kind == TokKind::kIdent &&
        toks_[k].text == "else") {
      has_else = true;
      cur_ = fork;
      if (cond.has_write && !cond.write.write_on_true) {
        const std::size_t wn = write_event_node(cond.write);
        edge(fork, wn);
        cur_ = wn;
      }
      k = parse_stmt(k + 1);
      else_exit = cur_;
    } else {
      else_exit = fork;
      if (cond.has_write && !cond.write.write_on_true) {
        const std::size_t wn = write_event_node(cond.write);
        edge(fork, wn);
        else_exit = wn;
      }
    }
    (void)has_else;
    const std::size_t join = new_node(k, k, "join");
    edge(then_exit, join);
    edge(else_exit, join);
    cur_ = (then_exit == kNoNode && else_exit == kNoNode) ? kNoNode : join;
    return k;
  }

  std::size_t parse_while(std::size_t i) {
    const std::size_t j = i + 1;
    if (j >= toks_.size() || toks_[j].text != "(") return emit_simple(i, "stmt");
    const ParenRange pr = paren_range(j);
    // Loop head: a synthetic node the back edge and entry both target, so
    // the condition re-evaluates on every iteration.
    const std::size_t head = new_node(pr.begin, pr.begin, "loop-head");
    edge(cur_, head);
    cur_ = head;
    const CondResult cond = parse_cond_range(pr.begin, pr.end);
    const std::size_t fork = cond.exit;
    const std::size_t brk = new_node(pr.after, pr.after, "loop-exit");

    cur_ = fork;
    if (cond.has_write && cond.write.write_on_true) {
      const std::size_t wn = write_event_node(cond.write);
      edge(fork, wn);
      cur_ = wn;
    }
    loops_.push_back({head, brk});
    const std::size_t k = parse_stmt(pr.after);
    loops_.pop_back();
    edge(cur_, head);  // back edge

    if (!cond.always_true) {
      if (cond.has_write && !cond.write.write_on_true) {
        const std::size_t wn = write_event_node(cond.write);
        edge(fork, wn);
        edge(wn, brk);
      } else {
        edge(fork, brk);
      }
    }
    cur_ = brk;
    return k;
  }

  std::size_t parse_do(std::size_t i) {
    const std::size_t head = new_node(i, i, "loop-head");
    edge(cur_, head);
    cur_ = head;
    const std::size_t cont = new_node(i, i, "loop-continue");
    const std::size_t brk = new_node(i, i, "loop-exit");
    loops_.push_back({cont, brk});
    std::size_t k = parse_stmt(i + 1);
    loops_.pop_back();
    edge(cur_, cont);
    // `while (cond) ;`
    if (k < toks_.size() && toks_[k].kind == TokKind::kIdent &&
        toks_[k].text == "while" && k + 1 < toks_.size() &&
        toks_[k + 1].text == "(") {
      const ParenRange pr = paren_range(k + 1);
      cur_ = cont;
      const CondResult cond = parse_cond_range(pr.begin, pr.end);
      edge(cond.exit, head);  // back edge
      if (!cond.always_true) edge(cond.exit, brk);
      k = skip_past_semicolon(pr.after);
    } else {
      edge(cont, brk);  // malformed: degrade to straight-line
    }
    cur_ = brk;
    return k;
  }

  std::size_t parse_for(std::size_t i) {
    const std::size_t j = i + 1;
    if (j >= toks_.size() || toks_[j].text != "(") return emit_simple(i, "stmt");
    const ParenRange pr = paren_range(j);
    // Split the header at top-level ';' — absent in a range-for.
    std::vector<std::size_t> semis;
    int depth = 0;
    for (std::size_t k = pr.begin; k < pr.end; ++k) {
      const Token& t = toks_[k];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (t.text == ";" && depth == 0) semis.push_back(k);
    }
    if (semis.size() != 2) {
      // Range-for: head executes once; body 0..n times.
      const std::size_t head = new_node(pr.begin, pr.end, "range-for-head");
      edge(cur_, head);
      const std::size_t brk = new_node(pr.after, pr.after, "loop-exit");
      cur_ = head;
      loops_.push_back({head, brk});
      const std::size_t k = parse_stmt(pr.after);
      loops_.pop_back();
      edge(cur_, head);
      edge(head, brk);
      cur_ = brk;
      return k;
    }
    // init
    if (semis[0] > pr.begin) {
      emit_expr(pr.begin, semis[0], {}, "for-init");
    }
    const std::size_t head = new_node(semis[0] + 1, semis[0] + 1, "loop-head");
    edge(cur_, head);
    cur_ = head;
    const CondResult cond = parse_cond_range(semis[0] + 1, semis[1]);
    const std::size_t fork = cond.exit;
    const std::size_t brk = new_node(pr.after, pr.after, "loop-exit");
    const std::size_t inc = new_node(semis[1] + 1, pr.end, "for-inc");

    cur_ = fork;
    if (cond.has_write && cond.write.write_on_true) {
      const std::size_t wn = write_event_node(cond.write);
      edge(fork, wn);
      cur_ = wn;
    }
    loops_.push_back({inc, brk});
    const std::size_t k = parse_stmt(pr.after);
    loops_.pop_back();
    edge(cur_, inc);
    edge(inc, head);
    if (!cond.always_true) {
      if (cond.has_write && !cond.write.write_on_true) {
        const std::size_t wn = write_event_node(cond.write);
        edge(fork, wn);
        edge(wn, brk);
      } else {
        edge(fork, brk);
      }
    }
    cur_ = brk;
    return k;
  }

  std::size_t parse_switch(std::size_t i) {
    const std::size_t j = i + 1;
    if (j >= toks_.size() || toks_[j].text != "(") return emit_simple(i, "stmt");
    const ParenRange pr = paren_range(j);
    const std::size_t head = new_node(pr.begin, pr.end, "switch-head");
    edge(cur_, head);
    std::size_t k = pr.after;
    if (k >= toks_.size() || toks_[k].text != "{") {
      cur_ = head;
      return k;
    }
    const std::size_t brk = new_node(k, k, "switch-exit");
    bool saw_default = false;
    loops_.push_back({kNoNode, brk});
    cur_ = kNoNode;  // code before the first label is unreachable
    ++k;
    while (k < toks_.size()) {
      const Token& t = toks_[k];
      if (t.kind == TokKind::kPunct && t.text == "}") {
        ++k;
        break;
      }
      if (t.kind == TokKind::kIdent &&
          (t.text == "case" || t.text == "default")) {
        saw_default = saw_default || t.text == "default";
        std::size_t lab = k + 1;
        int depth = 0;
        while (lab < toks_.size()) {
          const Token& lt = toks_[lab];
          if (lt.kind == TokKind::kPunct) {
            if (lt.text == "(" || lt.text == "[") ++depth;
            if (lt.text == ")" || lt.text == "]") --depth;
            if (lt.text == ":" && depth == 0 &&
                !(lab + 1 < toks_.size() && toks_[lab + 1].text == ":")) {
              break;
            }
          }
          ++lab;
        }
        const std::size_t entry = new_node(k, lab, "case");
        edge(head, entry);
        edge(cur_, entry);  // fall-through from the previous case body
        cur_ = entry;
        k = lab + 1;
        continue;
      }
      k = parse_stmt(k);
    }
    loops_.pop_back();
    edge(cur_, brk);
    if (!saw_default) edge(head, brk);
    cur_ = brk;
    return k;
  }

  std::size_t parse_try(std::size_t i) {
    const std::size_t pre = cur_;
    std::size_t k = i + 1;
    if (k < toks_.size() && toks_[k].text == "{") {
      k = parse_block(k);
    }
    const std::size_t try_exit = cur_;
    const std::size_t join = new_node(k, k, "join");
    edge(try_exit, join);
    while (k < toks_.size() && toks_[k].kind == TokKind::kIdent &&
           toks_[k].text == "catch") {
      std::size_t b = k + 1;
      if (b < toks_.size() && toks_[b].text == "(") b = match_const(b);
      const std::size_t centry = new_node(k, b, "catch");
      edge(pre, centry);  // any point in the try may throw; entry suffices
      cur_ = centry;
      if (b < toks_.size() && toks_[b].text == "{") b = parse_block(b);
      edge(cur_, join);
      k = b;
    }
    cur_ = join;
    return k;
  }

  std::size_t skip_past_semicolon(std::size_t i) const {
    int depth = 0;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == "]" || t.text == "}") {
          if (depth == 0) return i;  // enclosing close: malformed, stop
          --depth;
        }
        if (t.text == ";" && depth == 0) return i + 1;
      }
      ++i;
    }
    return i;
  }

  const std::vector<Token>& toks_;
  std::vector<Cfg>& out_;
  Cfg cfg_;
  std::size_t cur_ = kNoNode;
  std::vector<LoopCtx> loops_;
};

}  // namespace pmem_lint
