// SARIF 2.1.0 emission for pmem_lint.
//
// GitHub code scanning ingests SARIF; emitting it from the lint turns
// every violation into an inline PR annotation instead of a log line to
// hunt for.  The writer is deliberately minimal — one run, one driver,
// results with ruleId/message/location — and hand-rolls its JSON (the
// lint builds with nothing but C++20, same constraint as the lexer).
// scripts/check_sarif.py validates the output's structure against the
// 2.1.0 schema's requirements in CI.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace pmem_lint {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;  // UTF-8 passes through
        }
    }
  }
  return out;
}

/// One-line per-rule help text for the SARIF rule table (the long-form
/// documentation lives in docs/static-analysis.md).
inline const std::map<std::string, std::string>& sarif_rule_help() {
  static const std::map<std::string, std::string> help = {
      {"persist-after-store",
       "store to a persistent address must be persisted on all paths to "
       "function exit"},
      {"persist-after-cas",
       "CAS on a persistent address must be persisted on all paths to "
       "function exit"},
      {"raw-fence", "memory fences go through Ctx::fence()"},
      {"raw-writeback", "cache write-backs go through Ctx::flush()"},
      {"tagged-bits", "tag bits are manipulated only via the TaggedWord API"},
      {"metrics-gating", "instrumentation goes through the metrics:: API"},
      {"mmap-confined", "file-mapping syscalls stay inside src/pmem/"},
      {"header-persist",
       "segment-header stores must be persisted on all paths"},
      {"trace-hot-path", "the flight-recorder hot path is persist-free"},
      {"combined-fence",
       "files converted to the fence coalescer must not mix raw fences in"},
      {"persist-order",
       "flush -> fence -> publishing CAS, in that order on every path"},
      {"lock-leak",
       "every lock acquire reaches a release on all paths to exit"},
      {"resolve-pure", "resolve_* bodies are read-only"},
      {"exec-single-store",
       "at most one store to the detectability word per exec path"},
      {"bad-annotation", "malformed dssq-lint annotation"},
      {"unused-allow", "allow() annotation that suppressed nothing"},
  };
  return help;
}

/// Serialize violations as one SARIF 2.1.0 run.  Rule metadata covers every
/// rule the lint knows (plus the two annotation meta-rules), so ruleIndex
/// is stable across runs with different findings.
inline void write_sarif(std::ostream& os,
                        const std::vector<Violation>& violations,
                        const std::string& version) {
  std::vector<std::string> rule_ids;
  for (const auto& r : known_rules()) rule_ids.push_back(r);
  rule_ids.push_back("bad-annotation");
  rule_ids.push_back("unused-allow");
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    rule_index[rule_ids[i]] = i;
  }

  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n    {\n"
     << "      \"tool\": {\n        \"driver\": {\n"
     << "          \"name\": \"pmem_lint\",\n"
     << "          \"version\": \"" << json_escape(version) << "\",\n"
     << "          \"informationUri\": "
        "\"https://github.com/dssq/dssq/blob/main/docs/"
        "static-analysis.md\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    const auto& help = sarif_rule_help();
    const auto it = help.find(rule_ids[i]);
    const std::string text =
        it != help.end() ? it->second : "see docs/static-analysis.md";
    os << "            {\"id\": \"" << json_escape(rule_ids[i])
       << "\", \"shortDescription\": {\"text\": \"" << json_escape(text)
       << "\"}}" << (i + 1 < rule_ids.size() ? "," : "") << "\n";
  }
  os << "          ]\n        }\n      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(v.rule) << "\",\n";
    const auto it = rule_index.find(v.rule);
    if (it != rule_index.end()) {
      os << "          \"ruleIndex\": " << it->second << ",\n";
    }
    os << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << json_escape(v.message)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \""
       << json_escape(v.file) << "\", \"uriBaseId\": \"SRCROOT\"}, "
       << "\"region\": {\"startLine\": " << (v.line > 0 ? v.line : 1)
       << "}}}\n"
       << "          ]\n"
       << "        }" << (i + 1 < violations.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }\n  ]\n}\n";
}

}  // namespace pmem_lint
