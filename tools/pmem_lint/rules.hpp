// pmem_lint rule engine.
//
// The rules machine-check the hand-maintained disciplines of this repo
// (DESIGN.md, docs/persistence-model.md):
//
//   persist-after-store  An atomic .store() to a persistent address must be
//                        followed, in the same function, by a persist()/
//                        flush() covering that address.  "Persistent" is
//                        inferred from the file itself: the address families
//                        that appear as persist()/flush() arguments anywhere
//                        in the file (the code is the spec — a file that
//                        never persists, like the volatile MS queue, is
//                        exempt).
//   persist-after-cas    Same for compare_exchange on persistent fields.
//                        Fields named `ptr` are exempt: by repo convention
//                        those are the PaddedPtr head/tail/hint cells whose
//                        staleness recovery repairs (Fig. 6 lines 65-69),
//                        so their CASes deliberately skip the flush.
//   raw-fence            std::atomic_thread_fence / _mm_sfence outside the
//                        backend layer: algorithms must order persistence
//                        through Ctx::fence() so emulation, CLWB and the
//                        crash simulator all see the fence.
//   raw-writeback        _mm_clwb / _mm_clflushopt / _mm_clflush outside
//                        the backend layer: same reasoning for flushes.
//   tagged-bits          Shifting by 48..63 or masking with 16-bit-high
//                        literals outside common/tagged_ptr.hpp: tag bits
//                        may only be manipulated through the TaggedWord API
//                        so the 48-bit-address assumption lives in one file.
//   metrics-gating       DSSQ_METRICS_ENABLED conditionals or
//                        metrics::detail accesses outside common/metrics.*:
//                        instrumentation must go through the metrics:: API,
//                        which already compiles to no-ops when the option is
//                        OFF — ad-hoc gating drifts out of sync.
//   mmap-confined        mmap/munmap/mremap/msync/MAP_SYNC outside
//                        src/pmem/: file-mapping syscalls are the mmap
//                        backend's implementation detail.  Algorithms that
//                        called them directly would bypass the flush/fence
//                        contract (and its crash hooks and metrics), so the
//                        whole POSIX surface stays behind
//                        MmapBackend/PersistentHeap.
//   trace-hot-path       persist()/flush()/fence()-style calls inside the
//                        flight-recorder or histogram implementation files:
//                        the observability hot path is volatile by design —
//                        torn tails are handled by per-record stamps on the
//                        read side, so a persist barrier there would tax
//                        every traced operation to protect data that needs
//                        no protection.  Cold paths (formatting a fresh
//                        block) may opt out with an allow().
//   header-persist       An assignment through a `hdr`/`header`-rooted
//                        expression (e.g. `hdr->generation = ...`) must be
//                        followed, in the same function, by a covering
//                        persist() — or by a persist_header()-style helper,
//                        which counts as covering any header field.  The
//                        segment header is what open() trusts before
//                        mapping anything; an unpersisted header store is a
//                        refuse-to-open time bomb.
//   bad-annotation       A `dssq-lint:` comment that does not parse, names
//                        an unknown rule, or omits the justification.
//   unused-allow         An allow() annotation that suppressed nothing —
//                        kept an error so stale exemptions cannot linger.
//
// Suppression grammar (docs/static-analysis.md):
//
//   // dssq-lint: allow(<rule>[, <rule>...]) <justification>
//
// placed on the offending line, or as a comment directly above it (the
// justification may continue across following comment lines).  The
// justification is mandatory.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace pmem_lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

inline const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "persist-after-store", "persist-after-cas", "raw-fence",
      "raw-writeback",       "tagged-bits",       "metrics-gating",
      "mmap-confined",       "header-persist",    "trace-hot-path",
      "combined-fence",
  };
  return rules;
}

// ---- annotation handling ----------------------------------------------------

struct Allowance {
  std::set<std::string> rules;
  int line = 0;
  /// The code line the annotation governs: its own line (trailing comment)
  /// or the next line holding a token (standalone comment, possibly with
  /// plain continuation-comment lines between it and the code).
  int target = 0;
  bool used = false;
};

struct AnnotationSet {
  std::vector<Allowance> allowances;
  std::vector<Violation> errors;  // bad-annotation findings

  /// Resolve each allowance's target to the first code line at or after it.
  void resolve_targets(const std::vector<Token>& toks) {
    for (auto& a : allowances) {
      a.target = a.line;
      for (const auto& t : toks) {
        if (t.line > a.line) {
          a.target = t.line;
          break;
        }
      }
    }
  }

  /// True (and marks the allowance used) when `rule` is allowed on `line`.
  bool consume(const std::string& rule, int line) {
    for (auto& a : allowances) {
      if ((a.line == line || a.target == line) && a.rules.contains(rule)) {
        a.used = true;
        return true;
      }
    }
    return false;
  }
};

inline std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

inline AnnotationSet parse_annotations(const std::string& file,
                                       const std::vector<LintComment>& cs) {
  AnnotationSet out;
  for (const auto& c : cs) {
    const std::string body = trim(c.text);
    if (!body.starts_with("allow(")) {
      out.errors.push_back({file, c.line, "bad-annotation",
                            "unrecognized dssq-lint directive: expected "
                            "'allow(<rule>[, <rule>...]) <justification>'"});
      continue;
    }
    const std::size_t close = body.find(')');
    if (close == std::string::npos) {
      out.errors.push_back(
          {file, c.line, "bad-annotation", "allow(...) is missing ')'"});
      continue;
    }
    Allowance a;
    a.line = c.line;
    std::string list = body.substr(6, close - 6);
    std::size_t pos = 0;
    bool ok = true;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string rule = trim(
          list.substr(pos, comma == std::string::npos ? comma : comma - pos));
      if (!rule.empty()) {
        if (!known_rules().contains(rule)) {
          out.errors.push_back({file, c.line, "bad-annotation",
                                "unknown rule '" + rule + "' in allow()"});
          ok = false;
        }
        a.rules.insert(rule);
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (a.rules.empty()) {
      out.errors.push_back(
          {file, c.line, "bad-annotation", "allow() lists no rules"});
      continue;
    }
    if (trim(body.substr(close + 1)).empty()) {
      out.errors.push_back({file, c.line, "bad-annotation",
                            "allow() requires a justification after the "
                            "closing parenthesis"});
      continue;
    }
    if (ok) out.allowances.push_back(std::move(a));
  }
  return out;
}

// ---- expression normalization ----------------------------------------------

/// A normalized address expression: member-access segments with index
/// expressions blanked, e.g. `&x_[tid].word` -> {"x_[]", "word"}.
using Segments = std::vector<std::string>;

inline std::string segments_to_string(const Segments& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i != 0) out += '.';
    out += s[i];
  }
  return out;
}

/// Normalize a postfix expression given as a token slice.  Leading `&` and
/// `*` are dropped (an address-of does not change the location family).
inline Segments normalize_expr(const std::vector<Token>& toks,
                               std::size_t begin, std::size_t end) {
  Segments segs;
  std::string cur;
  int bracket = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct && t.text == "[") {
      if (bracket == 0) cur += "[]";
      ++bracket;
      continue;
    }
    if (t.kind == TokKind::kPunct && t.text == "]") {
      if (bracket > 0) --bracket;
      continue;
    }
    if (bracket > 0) continue;  // blank the index expression
    if (t.kind == TokKind::kPunct && (t.text == "." || t.text == "->")) {
      if (!cur.empty()) segs.push_back(cur);
      cur.clear();
      continue;
    }
    if (t.kind == TokKind::kPunct && (t.text == "&" || t.text == "*") &&
        cur.empty() && segs.empty()) {
      continue;
    }
    cur += t.text;
  }
  if (!cur.empty()) segs.push_back(cur);
  return segs;
}

/// True when `base` is a segment-wise prefix of `expr` (persisting `node`
/// covers a store to `node->next`).  A whole-array base segment covers
/// element accesses: persisting `returned_` covers `returned_[].value`.
inline bool covers(const Segments& base, const Segments& expr) {
  if (base.empty() || base.size() > expr.size()) return false;
  return std::equal(base.begin(), base.end(), expr.begin(),
                    [](const std::string& b, const std::string& e) {
                      return b == e || b + "[]" == e;
                    });
}

// ---- event extraction -------------------------------------------------------

enum class EventKind { kStore, kCas, kPersist, kFlush, kHeaderAssign };

/// True when the expression's root names a segment-header object: the
/// first segment contains "hdr" or "header" (case-insensitive) and at
/// least one member access follows (a bare `HeapHeader h;` local being
/// *built* is not an in-place header update).
inline bool is_header_rooted(const Segments& s) {
  if (s.size() < 2) return false;
  std::string root;
  for (char c : s.front()) {
    root += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return root.find("hdr") != std::string::npos ||
         root.find("header") != std::string::npos;
}

struct Event {
  EventKind kind;
  Segments expr;  // store/CAS target, or first persist/flush argument
  int line = 0;
};

struct FunctionEvents {
  std::vector<Event> events;
};

/// Walk backwards from token index `i` (exclusive) across one postfix
/// expression; returns the index of its first token.
inline std::size_t expr_begin(const std::vector<Token>& toks, std::size_t i) {
  std::size_t b = i;
  bool expect_operand = true;  // walking right-to-left: next is ident or ]
  while (b > 0) {
    const Token& t = toks[b - 1];
    if (expect_operand) {
      if (t.kind == TokKind::kIdent || t.kind == TokKind::kNumber) {
        --b;
        expect_operand = false;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "]") {
        int depth = 0;
        while (b > 0) {
          const Token& u = toks[b - 1];
          if (u.kind == TokKind::kPunct && u.text == "]") ++depth;
          if (u.kind == TokKind::kPunct && u.text == "[") {
            if (--depth == 0) {
              --b;
              break;
            }
          }
          --b;
        }
        expect_operand = true;  // e.g. `x_` before `[tid]`
        continue;
      }
      break;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == "." || t.text == "->" || t.text == "::")) {
      --b;
      expect_operand = true;
      continue;
    }
    break;
  }
  return b;
}

/// First call argument: tokens from `open+1` (the token after '(') up to the
/// first top-level ',' or the matching ')'.
inline std::pair<std::size_t, std::size_t> first_arg(
    const std::vector<Token>& toks, std::size_t open) {
  std::size_t i = open + 1;
  int depth = 0;
  const std::size_t begin = i;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") {
        if (t.text == ")" && depth == 0) break;
        --depth;
      }
      if (t.text == "," && depth == 0) break;
    }
    ++i;
  }
  return {begin, i};
}

}  // namespace pmem_lint
