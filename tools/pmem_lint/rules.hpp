// pmem_lint rule engine.
//
// The rules machine-check the hand-maintained disciplines of this repo
// (DESIGN.md, docs/persistence-model.md):
//
//   persist-after-store  An atomic .store() to a persistent address must be
//                        followed, in the same function, by a persist()/
//                        flush() covering that address.  "Persistent" is
//                        inferred from the file itself: the address families
//                        that appear as persist()/flush() arguments anywhere
//                        in the file (the code is the spec — a file that
//                        never persists, like the volatile MS queue, is
//                        exempt).
//   persist-after-cas    Same for compare_exchange on persistent fields.
//                        Fields named `ptr` are exempt: by repo convention
//                        those are the PaddedPtr head/tail/hint cells whose
//                        staleness recovery repairs (Fig. 6 lines 65-69),
//                        so their CASes deliberately skip the flush.
//   raw-fence            std::atomic_thread_fence / _mm_sfence outside the
//                        backend layer: algorithms must order persistence
//                        through Ctx::fence() so emulation, CLWB and the
//                        crash simulator all see the fence.
//   raw-writeback        _mm_clwb / _mm_clflushopt / _mm_clflush outside
//                        the backend layer: same reasoning for flushes.
//   tagged-bits          Shifting by 48..63 or masking with 16-bit-high
//                        literals outside common/tagged_ptr.hpp: tag bits
//                        may only be manipulated through the TaggedWord API
//                        so the 48-bit-address assumption lives in one file.
//   metrics-gating       DSSQ_METRICS_ENABLED conditionals or
//                        metrics::detail accesses outside common/metrics.*:
//                        instrumentation must go through the metrics:: API,
//                        which already compiles to no-ops when the option is
//                        OFF — ad-hoc gating drifts out of sync.
//   mmap-confined        mmap/munmap/mremap/msync/MAP_SYNC outside
//                        src/pmem/: file-mapping syscalls are the mmap
//                        backend's implementation detail.  Algorithms that
//                        called them directly would bypass the flush/fence
//                        contract (and its crash hooks and metrics), so the
//                        whole POSIX surface stays behind
//                        MmapBackend/PersistentHeap.
//   trace-hot-path       persist()/flush()/fence()-style calls inside the
//                        flight-recorder or histogram implementation files:
//                        the observability hot path is volatile by design —
//                        torn tails are handled by per-record stamps on the
//                        read side, so a persist barrier there would tax
//                        every traced operation to protect data that needs
//                        no protection.  Cold paths (formatting a fresh
//                        block) may opt out with an allow().
//   header-persist       An assignment through a `hdr`/`header`-rooted
//                        expression (e.g. `hdr->generation = ...`) must be
//                        followed, in the same function, by a covering
//                        persist() — or by a persist_header()-style helper,
//                        which counts as covering any header field.  The
//                        segment header is what open() trusts before
//                        mapping anything; an unpersisted header store is a
//                        refuse-to-open time bomb.
//   persist-order        On every path to a CAS on a persistent address
//                        (the publishing CAS), any prior flush() must have
//                        been drained by a fence()/fence_combined() (or a
//                        persist(), which fences internally).  A CAS
//                        reached with an unfenced flush pending publishes
//                        data the crash may tear.  The same applies to the
//                        ring publish idiom: an atomic .store() to a
//                        tail-index on a persistent address (`sub_tail`,
//                        `tail_`) publishes every entry flushed before it,
//                        so it too must be preceded by a draining fence on
//                        every path.
//   lock-leak            A lock acquire (`.exchange(true)` on a *lock*
//                        word, `.test_and_set()` on one, `.lock()`) must
//                        reach a release — `.store(false)`, `.unlock()`,
//                        `.exchange(false)`, or the construction of an
//                        RAII guard (Unlocker, std::lock_guard & family,
//                        which release on every scope exit) — on ALL paths
//                        to function exit.  An early return that skips the
//                        release wedges every later combiner batch.
//   resolve-pure         resolve() is read-only (the source paper's
//                        resolve returns the X[t] status without touching
//                        the heap): inside functions named resolve*, no
//                        persist()/flush() calls and no stores or CASes to
//                        persistent addresses.
//   exec-single-store    exec transitions are failure-atomic because they
//                        write the per-thread detectability word X[t] at
//                        most ONCE per path (the Figure-2 argument): a
//                        second store on the same path inside an exec_*
//                        function creates a window where a crash leaves a
//                        half-updated announcement.
//   bad-annotation       A `dssq-lint:` comment that does not parse, names
//                        an unknown rule, or omits the justification.
//   unused-allow         An allow() annotation that suppressed nothing —
//                        kept an error so stale exemptions cannot linger.
//
// The persist-coverage rules (persist-after-store / persist-after-cas /
// header-persist) and the four above are PATH-SENSITIVE: they run as
// dataflow analyses over the statement-level CFG in cfg.hpp, so "followed
// by a covering persist" means on *every* path from the store to function
// exit, not merely later in the token stream.
//
// Suppression grammar (docs/static-analysis.md):
//
//   // dssq-lint: allow(<rule>[, <rule>...]) <justification>
//
// placed on the offending line, or as a comment directly above it (the
// justification may continue across following comment lines).  The
// justification is mandatory.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace pmem_lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

inline const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "persist-after-store", "persist-after-cas", "raw-fence",
      "raw-writeback",       "tagged-bits",       "metrics-gating",
      "mmap-confined",       "header-persist",    "trace-hot-path",
      "combined-fence",      "persist-order",     "lock-leak",
      "resolve-pure",        "exec-single-store",
  };
  return rules;
}

// ---- annotation handling ----------------------------------------------------

struct Allowance {
  std::set<std::string> rules;
  int line = 0;
  /// The code line the annotation governs: its own line (trailing comment)
  /// or the next line holding a token (standalone comment, possibly with
  /// plain continuation-comment lines between it and the code).
  int target = 0;
  bool used = false;
};

struct AnnotationSet {
  std::vector<Allowance> allowances;
  std::vector<Violation> errors;  // bad-annotation findings

  /// Resolve each allowance's target to the first code line at or after it.
  void resolve_targets(const std::vector<Token>& toks) {
    for (auto& a : allowances) {
      a.target = a.line;
      for (const auto& t : toks) {
        if (t.line > a.line) {
          a.target = t.line;
          break;
        }
      }
    }
  }

  /// True (and marks the allowance used) when `rule` is allowed on `line`.
  bool consume(const std::string& rule, int line) {
    for (auto& a : allowances) {
      if ((a.line == line || a.target == line) && a.rules.contains(rule)) {
        a.used = true;
        return true;
      }
    }
    return false;
  }
};

inline std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

inline AnnotationSet parse_annotations(const std::string& file,
                                       const std::vector<LintComment>& cs) {
  AnnotationSet out;
  for (const auto& c : cs) {
    const std::string body = trim(c.text);
    if (!body.starts_with("allow(")) {
      out.errors.push_back({file, c.line, "bad-annotation",
                            "unrecognized dssq-lint directive: expected "
                            "'allow(<rule>[, <rule>...]) <justification>'"});
      continue;
    }
    const std::size_t close = body.find(')');
    if (close == std::string::npos) {
      out.errors.push_back(
          {file, c.line, "bad-annotation", "allow(...) is missing ')'"});
      continue;
    }
    Allowance a;
    a.line = c.line;
    std::string list = body.substr(6, close - 6);
    std::size_t pos = 0;
    bool ok = true;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string rule = trim(
          list.substr(pos, comma == std::string::npos ? comma : comma - pos));
      if (!rule.empty()) {
        if (!known_rules().contains(rule)) {
          out.errors.push_back({file, c.line, "bad-annotation",
                                "unknown rule '" + rule + "' in allow()"});
          ok = false;
        }
        a.rules.insert(rule);
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (a.rules.empty()) {
      out.errors.push_back(
          {file, c.line, "bad-annotation", "allow() lists no rules"});
      continue;
    }
    if (trim(body.substr(close + 1)).empty()) {
      out.errors.push_back({file, c.line, "bad-annotation",
                            "allow() requires a justification after the "
                            "closing parenthesis"});
      continue;
    }
    if (ok) out.allowances.push_back(std::move(a));
  }
  return out;
}

// ---- expression normalization ----------------------------------------------

/// A normalized address expression: member-access segments with index
/// expressions blanked, e.g. `&x_[tid].word` -> {"x_[]", "word"}.
using Segments = std::vector<std::string>;

inline std::string segments_to_string(const Segments& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i != 0) out += '.';
    out += s[i];
  }
  return out;
}

/// Normalize a postfix expression given as a token slice.  Leading `&` and
/// `*` are dropped (an address-of does not change the location family).
inline Segments normalize_expr(const std::vector<Token>& toks,
                               std::size_t begin, std::size_t end) {
  Segments segs;
  std::string cur;
  int bracket = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct && t.text == "[") {
      if (bracket == 0) cur += "[]";
      ++bracket;
      continue;
    }
    if (t.kind == TokKind::kPunct && t.text == "]") {
      if (bracket > 0) --bracket;
      continue;
    }
    if (bracket > 0) continue;  // blank the index expression
    if (t.kind == TokKind::kPunct && (t.text == "." || t.text == "->")) {
      if (!cur.empty()) segs.push_back(cur);
      cur.clear();
      continue;
    }
    if (t.kind == TokKind::kPunct && (t.text == "&" || t.text == "*") &&
        cur.empty() && segs.empty()) {
      continue;
    }
    cur += t.text;
  }
  if (!cur.empty()) segs.push_back(cur);
  return segs;
}

/// True when `base` is a segment-wise prefix of `expr` (persisting `node`
/// covers a store to `node->next`).  A whole-array base segment covers
/// element accesses: persisting `returned_` covers `returned_[].value`.
inline bool covers(const Segments& base, const Segments& expr) {
  if (base.empty() || base.size() > expr.size()) return false;
  return std::equal(base.begin(), base.end(), expr.begin(),
                    [](const std::string& b, const std::string& e) {
                      return b == e || b + "[]" == e;
                    });
}

// ---- event extraction -------------------------------------------------------

enum class EventKind {
  kStore,         // atomic .store() — target expr
  kCas,           // .compare_exchange_{strong,weak} — target expr
  kPersist,       // persist*/persist_combined (flush + fence) — arg expr
  kFlush,         // flush* (no fence of its own) — arg expr
  kFence,         // fence()/fence_combined() — drains pending flushes
  kHeaderAssign,  // raw assignment through a hdr/header-rooted lvalue
  kLockAcquire,   // .exchange(true)/.test_and_set() on a lock word, .lock()
  kLockRelease,   // .store(false)/.exchange(false)/.unlock(); empty expr =
                  // RAII guard construction (releases on every scope exit)
};

/// True when the expression's root names a segment-header object: the
/// first segment contains "hdr" or "header" (case-insensitive) and at
/// least one member access follows (a bare `HeapHeader h;` local being
/// *built* is not an in-place header update).
inline bool is_header_rooted(const Segments& s) {
  if (s.size() < 2) return false;
  std::string root;
  for (char c : s.front()) {
    root += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return root.find("hdr") != std::string::npos ||
         root.find("header") != std::string::npos;
}

struct Event {
  EventKind kind;
  Segments expr;  // store/CAS target, or first persist/flush argument
  int line = 0;
};

/// Walk backwards from token index `i` (exclusive) across one postfix
/// expression; returns the index of its first token.
inline std::size_t expr_begin(const std::vector<Token>& toks, std::size_t i) {
  std::size_t b = i;
  bool expect_operand = true;  // walking right-to-left: next is ident or ]
  while (b > 0) {
    const Token& t = toks[b - 1];
    if (expect_operand) {
      if (t.kind == TokKind::kIdent || t.kind == TokKind::kNumber) {
        --b;
        expect_operand = false;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "]") {
        int depth = 0;
        while (b > 0) {
          const Token& u = toks[b - 1];
          if (u.kind == TokKind::kPunct && u.text == "]") ++depth;
          if (u.kind == TokKind::kPunct && u.text == "[") {
            if (--depth == 0) {
              --b;
              break;
            }
          }
          --b;
        }
        expect_operand = true;  // e.g. `x_` before `[tid]`
        continue;
      }
      break;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == "." || t.text == "->" || t.text == "::")) {
      --b;
      expect_operand = true;
      continue;
    }
    break;
  }
  return b;
}

/// First call argument: tokens from `open+1` (the token after '(') up to the
/// first top-level ',' or the matching ')'.
inline std::pair<std::size_t, std::size_t> first_arg(
    const std::vector<Token>& toks, std::size_t open) {
  std::size_t i = open + 1;
  int depth = 0;
  const std::size_t begin = i;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") {
        if (t.text == ")" && depth == 0) break;
        --depth;
      }
      if (t.text == "," && depth == 0) break;
    }
    ++i;
  }
  return {begin, i};
}

/// Pseudo-argument recorded for argument-less persist_header()-style
/// helpers; treated as covering any header-rooted assignment.
inline const char* kHeaderHelper = "<persist-header-helper>";

/// True when the identifier at `i` is a call (next token '(') rather than a
/// declaration (`void flush(const void*`), filtered by the preceding token.
inline bool is_call_site(const std::vector<Token>& toks, std::size_t i) {
  if (i + 1 >= toks.size()) return false;
  const Token& next = toks[i + 1];
  if (next.kind != TokKind::kPunct || next.text != "(") return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kPunct) {
    // `.persist(` / `->persist(` / start of statement; `::` would be a
    // qualified declaration or call — treat as call (harmless either way).
    return prev.text != "~";
  }
  // Identifier before it: a declaration (`void persist(`) unless it is a
  // statement keyword.
  return prev.text == "return" || prev.text == "else" || prev.text == "do";
}

/// Any segment of the expression names a lock word (the repo convention:
/// `lock_`, `role_lock`, ...).
inline bool is_lock_expr(const Segments& s) {
  for (const auto& seg : s) {
    std::string low;
    for (char c : seg) {
      low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (low.find("lock") != std::string::npos) return true;
  }
  return false;
}

/// RAII types whose destructor releases a lock on every scope exit.
inline bool is_raii_guard_type(const std::string& ident) {
  return ident == "Unlocker" || ident == "lock_guard" ||
         ident == "unique_lock" || ident == "scoped_lock" ||
         ident == "shared_lock";
}

/// A publish-index expression: a ring/queue tail counter whose store makes
/// previously written entries visible to a consumer (`sub_tail`,
/// `comp_tail`, `tail_` — the submission-ring publish idiom).  The stored
/// member itself must name the tail; a store to some other field of a
/// structure that merely CONTAINS a tail is not a publication.
inline bool is_publish_index(const Segments& s) {
  if (s.empty()) return false;
  std::string low;
  for (char c : s.back()) {
    low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return low.find("tail") != std::string::npos;
}

/// The per-thread detectability word X[t]: the repo convention roots it at
/// `x_` (`x_[tid].word`), matching the paper's X[1..n] announcement array.
inline bool is_detectability_word(const Segments& s) {
  if (s.empty()) return false;
  std::string root = s.front();
  if (root.size() >= 2 && root.ends_with("[]")) {
    root.resize(root.size() - 2);
  }
  return root == "x_" || root == "x";
}

/// Extract the rule-relevant events from token range [begin,end), skipping
/// `holes` (lambda bodies carved into their own CFGs, and condition writes
/// re-homed onto branch nodes).  Events come back in token order.
inline std::vector<Event> extract_events(
    const std::vector<Token>& toks, std::size_t begin, std::size_t end,
    const std::vector<std::pair<std::size_t, std::size_t>>& holes) {
  std::vector<Event> out;
  auto in_hole = [&](std::size_t i) {
    for (const auto& h : holes) {
      if (i >= h.first && i < h.second) return true;
    }
    return false;
  };
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (in_hole(i)) continue;
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct &&
        (t.text == "=" || t.text == "|=" || t.text == "&=" ||
         t.text == "+=" || t.text == "-=" || t.text == "^=")) {
      // Raw (non-atomic) assignment: only segment-header targets are
      // policed (header-persist); atomics persist via the store/CAS rules.
      const std::size_t b = expr_begin(toks, i);
      Segments target = normalize_expr(toks, b, i);
      if (is_header_rooted(target)) {
        out.push_back({EventKind::kHeaderAssign, std::move(target), t.line});
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    // Member calls: expr.member(...) / expr->member(...).
    const bool member_call =
        i + 1 < toks.size() && toks[i + 1].text == "(" && i > 0 &&
        toks[i - 1].kind == TokKind::kPunct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (member_call) {
      const std::size_t b = expr_begin(toks, i - 1);
      Segments target = normalize_expr(toks, b, i - 1);
      const auto [abegin, aend] = first_arg(toks, i + 1);
      const bool arg_true =
          aend == abegin + 1 && toks[abegin].text == "true";
      const bool arg_false =
          aend == abegin + 1 && toks[abegin].text == "false";
      if (t.text == "store") {
        if (arg_false && is_lock_expr(target)) {
          out.push_back({EventKind::kLockRelease, target, t.line});
        }
        out.push_back({EventKind::kStore, std::move(target), t.line});
        continue;
      }
      if (t.text == "compare_exchange_strong" ||
          t.text == "compare_exchange_weak") {
        out.push_back({EventKind::kCas, std::move(target), t.line});
        continue;
      }
      if (t.text == "exchange" && is_lock_expr(target)) {
        if (arg_true) {
          out.push_back({EventKind::kLockAcquire, std::move(target), t.line});
        } else if (arg_false) {
          out.push_back({EventKind::kLockRelease, std::move(target), t.line});
        }
        continue;
      }
      if (t.text == "test_and_set" && is_lock_expr(target)) {
        out.push_back({EventKind::kLockAcquire, std::move(target), t.line});
        continue;
      }
      if (t.text == "lock" && is_lock_expr(target)) {
        out.push_back({EventKind::kLockAcquire, std::move(target), t.line});
        continue;
      }
      if (t.text == "unlock") {
        out.push_back({EventKind::kLockRelease, std::move(target), t.line});
        continue;
      }
      if (t.text == "clear" && is_lock_expr(target)) {
        out.push_back({EventKind::kLockRelease, std::move(target), t.line});
        continue;
      }
    }

    // RAII guard construction: `Unlocker u{...}` / `std::lock_guard l(...)`.
    if (is_raii_guard_type(t.text) && i + 1 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent) {
      out.push_back({EventKind::kLockRelease, Segments{}, t.line});
      continue;
    }

    // Persist-family calls, including helper wrappers that follow the
    // naming convention (`persist_clear_dirty(addr, ...)`): the first
    // argument names the covered address.
    if (t.text == "fence" || t.text == "fence_combined" ||
        t.text.ends_with("_fence")) {
      if (is_call_site(toks, i)) {
        out.push_back({EventKind::kFence, Segments{}, t.line});
      }
      continue;
    }
    if (t.text.starts_with("persist") || t.text.starts_with("flush")) {
      if (!is_call_site(toks, i)) continue;
      const auto [abegin, aend] = first_arg(toks, i + 1);
      Segments arg = normalize_expr(toks, abegin, aend);
      if (arg.empty() && (t.text.find("header") != std::string::npos ||
                          t.text.find("hdr") != std::string::npos)) {
        // An argument-less persist_header()-style helper covers every
        // header field for the header-persist rule.
        arg = {kHeaderHelper};
      }
      out.push_back({t.text.starts_with("flush") ? EventKind::kFlush
                                                 : EventKind::kPersist,
                     std::move(arg), t.line});
      continue;
    }
  }
  return out;
}

/// The file's persistent-address family: every first argument of an exact
/// persist()/flush()/persist_combined() call anywhere in the file (the
/// code is the spec — a file that never persists is exempt).
inline std::vector<Segments> collect_persist_family(
    const std::vector<Token>& toks) {
  std::vector<Segments> family;
  auto add = [&](Segments s) {
    if (s.empty()) return;
    for (const auto& f : family) {
      if (f == s) return;
    }
    family.push_back(std::move(s));
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text != "persist" && t.text != "flush" &&
        t.text != "persist_combined") {
      continue;
    }
    if (!is_call_site(toks, i)) continue;
    const auto [abegin, aend] = first_arg(toks, i + 1);
    add(normalize_expr(toks, abegin, aend));
  }
  return family;
}

}  // namespace pmem_lint
