// Forward/backward dataflow over pmem_lint CFGs.
//
// Rules phrase their discipline as facts flowing over the Cfg from
// cfg.hpp: "this address family has a covering persist downstream",
// "this flush has not been fenced yet", "a release reaches every exit".
// The solver is a plain iterate-to-fixpoint bitset engine — function
// graphs here are tens of nodes, so a worklist would be over-engineering —
// with the two meets the rules need:
//
//   * kIntersect — must-analyses ("on ALL paths"): persist coverage,
//     lock release.  Unvisited/unreachable inputs start at TOP (all
//     facts), the standard optimistic initialization.
//   * kUnion — may-analyses ("on SOME path"): an unfenced flush or an
//     earlier detectability-word store reaching this point on any path is
//     already a violation.
//
// Node transfer functions are the composition of per-event transfers
// (each `s := (s \ kill) ∪ gen`); compose_transfer() folds an event
// sequence into one gen/kill pair so the solver sees plain bitsets, and
// rules re-walk events inside a node to query the state between them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cfg.hpp"

namespace pmem_lint {

/// Fixed-capacity bitset sized at runtime (fact universes are per-rule,
/// per-function).
class FactSet {
 public:
  FactSet() = default;
  explicit FactSet(std::size_t nbits)
      : nbits_(nbits), w_((nbits + 63) / 64, 0) {}

  static FactSet all(std::size_t nbits) {
    FactSet s(nbits);
    for (auto& word : s.w_) word = ~std::uint64_t{0};
    s.trim();
    return s;
  }

  void set(std::size_t i) { w_[i / 64] |= std::uint64_t{1} << (i % 64); }
  void reset(std::size_t i) { w_[i / 64] &= ~(std::uint64_t{1} << (i % 64)); }
  bool test(std::size_t i) const {
    return (w_[i / 64] >> (i % 64)) & 1;
  }
  void clear() {
    for (auto& word : w_) word = 0;
  }
  bool any() const {
    for (auto word : w_) {
      if (word != 0) return true;
    }
    return false;
  }
  std::size_t size() const { return nbits_; }

  FactSet& operator|=(const FactSet& o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] |= o.w_[i];
    return *this;
  }
  FactSet& operator&=(const FactSet& o) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] &= o.w_[i];
    return *this;
  }
  /// this := (this \ kill) ∪ gen — one transfer application.
  void transfer(const FactSet& gen, const FactSet& kill) {
    for (std::size_t i = 0; i < w_.size(); ++i) {
      w_[i] = (w_[i] & ~kill.w_[i]) | gen.w_[i];
    }
  }
  bool operator==(const FactSet& o) const { return w_ == o.w_; }

 private:
  void trim() {
    if (nbits_ % 64 != 0 && !w_.empty()) {
      w_.back() &= (std::uint64_t{1} << (nbits_ % 64)) - 1;
    }
  }
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> w_;
};

enum class FlowDir { kForward, kBackward };
enum class FlowMeet { kUnion, kIntersect };

struct FlowResult {
  /// Forward: in[n] = state before the node's first event, out[n] after
  /// its last.  Backward: out[n] = state "downstream" of the node (facts
  /// holding over all/some paths from its end), in[n] upstream of it.
  std::vector<FactSet> in, out;
};

/// Fold a sequence of per-event (gen, kill) transfers — already ordered in
/// flow direction — into one node-level pair.
inline void compose_transfer(const std::vector<FactSet>& gens,
                             const std::vector<FactSet>& kills,
                             FactSet& gen_out, FactSet& kill_out) {
  for (std::size_t e = 0; e < gens.size(); ++e) {
    gen_out.transfer(gens[e], kills[e]);
    kill_out |= kills[e];
    // Facts generated later survive the accumulated kill.
    for (std::size_t i = 0; i < gen_out.size(); ++i) {
      if (gen_out.test(i)) kill_out.reset(i);
    }
  }
}

/// Solve the dataflow problem: per-node gen/kill (composed over the node's
/// events in flow direction), boundary ∅ at entry (forward) or exit
/// (backward).  Unreachable nodes keep the optimistic TOP for intersect.
inline FlowResult solve_flow(const Cfg& cfg, std::size_t nfacts, FlowDir dir,
                             FlowMeet meet, const std::vector<FactSet>& gen,
                             const std::vector<FactSet>& kill) {
  const std::size_t n = cfg.nodes.size();
  FlowResult r;
  const FactSet init = meet == FlowMeet::kIntersect ? FactSet::all(nfacts)
                                                    : FactSet(nfacts);
  r.in.assign(n, init);
  r.out.assign(n, init);

  std::vector<std::vector<std::size_t>> preds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s : cfg.nodes[i].succ) preds[s].push_back(i);
  }

  const std::size_t boundary =
      dir == FlowDir::kForward ? cfg.entry : cfg.exit;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      FactSet meet_in(nfacts);
      const auto& inputs = dir == FlowDir::kForward ? preds[i]
                                                    : cfg.nodes[i].succ;
      if (i == boundary) {
        // boundary state is ∅ (no facts hold outside the function)
      } else if (inputs.empty()) {
        if (meet == FlowMeet::kIntersect) meet_in = FactSet::all(nfacts);
      } else {
        bool first = true;
        for (std::size_t p : inputs) {
          const FactSet& src =
              dir == FlowDir::kForward ? r.out[p] : r.in[p];
          if (first) {
            meet_in = src;
            first = false;
          } else if (meet == FlowMeet::kUnion) {
            meet_in |= src;
          } else {
            meet_in &= src;
          }
        }
      }
      FactSet next = meet_in;
      next.transfer(gen[i], kill[i]);
      if (dir == FlowDir::kForward) {
        if (!(meet_in == r.in[i]) || !(next == r.out[i])) {
          r.in[i] = meet_in;
          r.out[i] = next;
          changed = true;
        }
      } else {
        if (!(meet_in == r.out[i]) || !(next == r.in[i])) {
          r.out[i] = meet_in;
          r.in[i] = next;
          changed = true;
        }
      }
    }
  }
  return r;
}

}  // namespace pmem_lint
