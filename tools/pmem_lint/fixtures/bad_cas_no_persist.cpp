// Fixture: a linearizing CAS on a persistent (non-hint) field with no
// covering persist — the lint must flag persist-after-cas and exit nonzero.
#include <atomic>
#include <cstdint>

struct Node {
  std::atomic<Node*> next{nullptr};
};

struct Ctx {
  void persist(const void*, unsigned long) {}
};

struct Obj {
  Ctx ctx_;

  void ok(Node* last, Node* node) {
    Node* expected = nullptr;
    if (last->next.compare_exchange_strong(expected, node)) {
      ctx_.persist(&last->next, sizeof(last->next));
    }
  }

  void missing(Node* last, Node* node) {
    Node* expected = nullptr;
    last->next.compare_exchange_strong(expected, node);  // BAD: not flushed
  }
};
