// Fixture: raw fences and write-back intrinsics outside the backend layer —
// the lint must flag raw-fence and raw-writeback and exit nonzero.
#include <atomic>

void publish(std::atomic<int>& flag) {
  std::atomic_thread_fence(std::memory_order_release);  // BAD: raw-fence
  flag.store(1, std::memory_order_relaxed);
}

void annotated(std::atomic<int>& flag) {
  // dssq-lint: allow(raw-fence) fixture demonstrating a justified exemption
  std::atomic_thread_fence(std::memory_order_release);
  flag.store(1, std::memory_order_relaxed);
}
