// Fixture: the blessed segment-header update patterns — a direct covering
// persist, and an argument-less persist_header() helper that the rule
// treats as covering every header field.  Must lint clean (exit 0).
#include <cstdint>

struct HeapHeader {
  std::uint64_t generation = 0;
  std::uint64_t clean_shutdown = 0;
  std::uint64_t checksum = 0;
};

struct Ctx {
  void persist(const void*, unsigned long) {}
};

struct Heap {
  Ctx ctx_;
  HeapHeader* hdr_ = nullptr;

  void persist_header() {
    hdr_->checksum = hdr_->generation ^ hdr_->clean_shutdown;
    ctx_.persist(hdr_, sizeof(HeapHeader));
  }

  void open_generation_bump() {
    hdr_->generation += 1;
    hdr_->clean_shutdown = 0;
    persist_header();  // helper counts as covering the header stores
  }

  void close_clean() {
    hdr_->clean_shutdown = 1;
    ctx_.persist(hdr_, sizeof(HeapHeader));  // direct coverage also fine
  }

  void local_header_copy_is_exempt() {
    HeapHeader h;
    h.generation = 7;  // a volatile local being built, not an update of
                       // the mapped header: root segment is not hdr-named
    (void)h;
  }
};
