// Fixture: the submission-ring publish idiom, broken — the tail store
// that publishes a ring entry is reachable while the entry's flush is
// still unfenced (and, on a second path, with no flush drained at all).
// A crash after the tail persists but before the entry's line writes back
// would publish a torn entry.  The lint must flag persist-order and exit
// nonzero.
#include <atomic>
#include <cstdint>

struct SubEntry {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint64_t> checksum{0};
};

struct ClientCtl {
  std::atomic<std::uint64_t> sub_tail{0};
};

struct Ctx {
  void persist_combined(const void*, unsigned long) {}
  void flush(const void*, unsigned long) {}
  void fence_combined() {}
};

struct Ring {
  Ctx ctx_;
  SubEntry entries_[8];
  ClientCtl c_;

  void submit_unfenced(std::uint64_t arg) {
    const std::uint64_t t = c_.sub_tail.load(std::memory_order_relaxed);
    SubEntry& s = entries_[t & 7];
    s.seq.store(t + 1, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.checksum.store(t + 1 + arg, std::memory_order_relaxed);
    ctx_.flush(&s, sizeof(SubEntry));
    // BAD: no fence between the entry flush and the publishing tail store.
    c_.sub_tail.store(t + 1, std::memory_order_release);
    ctx_.persist_combined(&c_, sizeof(ClientCtl));
  }

  void fence_on_one_path_only(std::uint64_t arg, bool hurry) {
    const std::uint64_t t = c_.sub_tail.load(std::memory_order_relaxed);
    SubEntry& s = entries_[t & 7];
    s.arg.store(arg, std::memory_order_relaxed);
    ctx_.flush(&s, sizeof(SubEntry));
    if (!hurry) {
      ctx_.fence_combined();
    }
    // BAD: the `hurry` path publishes with the entry flush still pending.
    c_.sub_tail.store(t + 1, std::memory_order_release);
    ctx_.persist_combined(&c_, sizeof(ClientCtl));
  }
};
