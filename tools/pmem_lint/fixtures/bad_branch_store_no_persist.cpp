// Fixture: a store to a persistent address is persisted on one branch but
// not the other — the path-sensitive engine must flag persist-after-store
// (the pre-PR7 linear scanner was fooled by ANY later persist in the token
// stream) and exit nonzero.
#include <atomic>
#include <cstdint>

struct Slot {
  std::atomic<std::uint64_t> word{0};
};

struct Ctx {
  void persist(const void*, unsigned long) {}
};

struct Obj {
  Ctx ctx_;
  Slot* x_ = nullptr;
  bool fast_path_ = false;

  void branch_skips_persist(unsigned tid) {
    x_[tid].word.store(1);  // BAD: unpersisted when fast_path_ is true
    if (fast_path_) {
      return;  // early exit skips the persist below
    }
    ctx_.persist(&x_[tid], sizeof(Slot));
  }

  void one_arm_only(unsigned tid, bool deep) {
    x_[tid].word.store(2);  // BAD: only the `deep` arm persists
    if (deep) {
      ctx_.persist(&x_[tid], sizeof(Slot));
    } else {
      x_[tid].word.load();
    }
  }
};
