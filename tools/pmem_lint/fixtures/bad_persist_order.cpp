// Fixture: a publishing CAS is reachable with an unfenced flush() pending —
// the crash may tear the flushed-but-undrained data the CAS just made
// visible.  The lint must flag persist-order and exit nonzero.
#include <atomic>
#include <cstdint>

struct Node {
  std::atomic<Node*> next{nullptr};
  long value = 0;
};

struct Ctx {
  void persist(const void*, unsigned long) {}
  void flush(const void*, unsigned long) {}
  void fence() {}
};

struct Queue {
  Ctx ctx_;

  void publish_without_fence(Node* node, Node* last) {
    node->value = 42;
    ctx_.flush(&node->value, sizeof(node->value));
    // BAD: no fence() between the flush and the publishing CAS.
    Node* expected = nullptr;
    last->next.compare_exchange_strong(expected, node);
    ctx_.persist(&last->next, sizeof(last->next));
  }

  void fence_on_one_path_only(Node* node, Node* last, bool hurry) {
    node->value = 7;
    ctx_.flush(&node->value, sizeof(node->value));
    if (!hurry) {
      ctx_.fence();
    }
    // BAD: the `hurry` path reaches the CAS with the flush still pending.
    Node* expected = nullptr;
    last->next.compare_exchange_strong(expected, node);
    ctx_.persist(&last->next, sizeof(last->next));
  }
};
