// Fixture: a combiner-lock acquire with an early return that skips the
// release — every later batch wedges behind the leaked lock.  The lint
// must flag lock-leak and exit nonzero.
#include <atomic>
#include <cstddef>

struct Combiner {
  std::atomic<bool> lock_{false};
  std::atomic<std::size_t> pending_{0};

  bool drain_leaks_on_empty() {
    if (lock_.exchange(true)) {
      return false;  // someone else holds it — fine, nothing acquired
    }
    if (pending_.load() == 0) {
      return false;  // BAD: returns while still holding lock_
    }
    pending_.store(0);
    lock_.store(false);
    return true;
  }
};
