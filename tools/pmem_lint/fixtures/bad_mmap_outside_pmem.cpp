// Fixture: file-mapping syscalls outside src/pmem/ — the lint must flag
// mmap-confined for each of them and exit nonzero.  (This fixture lives
// under tools/, so the src/pmem/ path exemption does not apply.)
#include <cstddef>

extern "C" {
void* mmap(void*, unsigned long, int, int, int, long);
int munmap(void*, unsigned long);
int msync(void*, unsigned long, int);
}

void* map_my_own_heap(std::size_t bytes) {
  // BAD: algorithms must go through MmapBackend/PersistentHeap.
  return mmap(nullptr, bytes, 3, 1, -1, 0);
}

void drop_my_own_heap(void* p, std::size_t bytes) {
  msync(p, bytes, 4);  // BAD: bypasses flush/fence accounting
  munmap(p, bytes);    // BAD
}
