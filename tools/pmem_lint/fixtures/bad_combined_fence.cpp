// Fixture: a file that adopted the fence coalescer must not mix raw
// fences back in — the lint must flag combined-fence and exit nonzero.
struct Ctx {
  void flush(const void*, unsigned long) {}
  void fence() {}
  void fence_combined() {}
  void persist_combined(const void*, unsigned long) {}
};

void hot_path(Ctx& ctx, int* slot) {
  *slot = 1;
  ctx.persist_combined(slot, sizeof *slot);
  ctx.flush(slot, sizeof *slot);
  ctx.fence();  // BAD: combined-fence — re-serializes the converted path
}
