// Fixture: raw tag-bit manipulation outside common/tagged_ptr.hpp — the
// lint must flag tagged-bits and exit nonzero.
#include <cstdint>

constexpr std::uint64_t kMyFlag = std::uint64_t{1} << 63;  // BAD: shift by 63

std::uint64_t strip(std::uint64_t w) {
  return w & 0xffff000000000000;  // BAD: pure tag-mask literal
}

// Dense 64-bit constants are fine: address bits are populated.
constexpr std::uint64_t kHashMult = 0x9e3779b97f4a7c15;
