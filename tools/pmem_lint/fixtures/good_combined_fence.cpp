// Fixture: converted paths fence through the coalescer; a deliberate raw
// fence on a cold path carries an allow() annotation.  Exit 0.
struct Ctx {
  void flush(const void*, unsigned long) {}
  void fence() {}
  void fence_combined() {}
  void persist_combined(const void*, unsigned long) {}
};

void hot_path(Ctx& ctx, int* slot) {
  *slot = 1;
  ctx.persist_combined(slot, sizeof *slot);
  ctx.flush(slot, sizeof *slot);
  ctx.fence_combined();
}

void recovery(Ctx& ctx, int* slot) {
  *slot = 0;
  ctx.flush(slot, sizeof *slot);
  // dssq-lint: allow(combined-fence) recovery is single-threaded; there is
  // no concurrent fence to combine with.
  ctx.fence();
}
