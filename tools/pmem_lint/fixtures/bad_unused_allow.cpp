// Fixture: an allow() annotation that suppresses nothing — the lint must
// flag unused-allow and exit nonzero (stale exemptions may not linger).
#include <atomic>

void fine(std::atomic<int>& flag) {
  // dssq-lint: allow(raw-fence) stale: the fence below was removed long ago
  flag.store(1, std::memory_order_release);
}
