// Fixture: ad-hoc metrics gating outside common/metrics.* — the lint must
// flag metrics-gating and exit nonzero.
namespace metrics {
namespace detail {
inline int counters[4];
}  // namespace detail
}  // namespace metrics

void hot_path() {
#if DSSQ_METRICS_ENABLED  // BAD: gate via the metrics:: API instead
  metrics::detail::counters[0]++;  // BAD: internal namespace access
#endif
}
