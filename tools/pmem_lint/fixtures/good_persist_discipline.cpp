// Fixture: every store/CAS to a persistent address is followed by a
// covering persist()/flush() — the lint must exit 0.
//
// The persistent-address family is inferred from this file's own persist
// calls: x_, head_, node (and, via segment-prefix coverage, their members).
#include <atomic>
#include <cstdint>

struct Node {
  std::atomic<Node*> next{nullptr};
  long value = 0;
};
struct PaddedPtr {
  std::atomic<Node*> ptr{nullptr};
};
struct Slot {
  std::atomic<std::uint64_t> word{0};
};

struct Ctx {
  void persist(const void*, unsigned long) {}
  void flush(const void*, unsigned long) {}
  void fence() {}
};

struct Queue {
  Ctx ctx_;
  Slot* x_ = nullptr;
  PaddedPtr* head_ = nullptr;

  void announce(unsigned tid, std::uint64_t w) {
    x_[tid].word.store(w);
    ctx_.persist(&x_[tid], sizeof(Slot));
  }

  void link(Node* last, Node* node) {
    Node* expected = nullptr;
    if (last->next.compare_exchange_strong(expected, node)) {
      ctx_.persist(&last->next, sizeof(last->next));
    }
  }

  void init(Node* node) {
    // Persisting the whole object covers stores to its members.
    node->next.store(nullptr);
    ctx_.persist(node, sizeof(Node));
  }

  void swing(Node* last, Node* next) {
    // `.ptr` fields are hint cells: recovery repairs them, so their CASes
    // are exempt from the flush requirement by convention.
    head_->ptr.compare_exchange_strong(last, next);
  }

  void flush_then_store(Node* node) {
    // flush() covers just like persist().
    node->value = 1;
    node->next.store(nullptr);
    ctx_.flush(&node->next, sizeof(node->next));
    ctx_.fence();
  }
};
