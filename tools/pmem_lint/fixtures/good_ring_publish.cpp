// Fixture: the submission-ring publish idiom, done right — the entry
// payload and checksum are flushed and DRAINED (fence) before the tail
// store that publishes them, and the tail line is persisted afterwards.
// The lint must exit 0.
#include <atomic>
#include <cstdint>

struct SubEntry {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint64_t> checksum{0};
};

struct ClientCtl {
  std::atomic<std::uint64_t> sub_tail{0};
};

struct Ctx {
  void persist_combined(const void*, unsigned long) {}
  void flush(const void*, unsigned long) {}
  void fence_combined() {}
};

struct Ring {
  Ctx ctx_;
  SubEntry entries_[8];
  ClientCtl c_;

  void submit(std::uint64_t arg) {
    const std::uint64_t t = c_.sub_tail.load(std::memory_order_relaxed);
    SubEntry& s = entries_[t & 7];
    s.seq.store(t + 1, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.checksum.store(t + 1 + arg, std::memory_order_relaxed);
    ctx_.flush(&s, sizeof(SubEntry));
    ctx_.fence_combined();  // entry durable BEFORE it becomes visible
    c_.sub_tail.store(t + 1, std::memory_order_release);
    ctx_.persist_combined(&c_, sizeof(ClientCtl));
  }

  // The batched variant: several staged entries, one draining fence, one
  // tail store announcing them all.  Same idiom, same verdict.
  void publish_staged(std::uint64_t staged) {
    ctx_.fence_combined();
    c_.sub_tail.store(c_.sub_tail.load(std::memory_order_relaxed) + staged,
                      std::memory_order_release);
    ctx_.persist_combined(&c_, sizeof(ClientCtl));
  }
};
