// Fixture: a store to a persistent address with no covering persist in the
// same function — the lint must flag persist-after-store and exit nonzero.
#include <atomic>
#include <cstdint>

struct Slot {
  std::atomic<std::uint64_t> word{0};
};

struct Ctx {
  void persist(const void*, unsigned long) {}
};

struct Obj {
  Ctx ctx_;
  Slot* x_ = nullptr;

  void ok(unsigned tid) {
    x_[tid].word.store(1);
    ctx_.persist(&x_[tid], sizeof(Slot));  // establishes x_ as persistent
  }

  void missing(unsigned tid) {
    x_[tid].word.store(2);  // BAD: never persisted in this function
  }
};
