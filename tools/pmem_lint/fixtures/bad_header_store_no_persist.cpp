// Fixture: segment-header stores without a covering persist — the lint
// must flag header-persist for the uncovered stores and exit nonzero.
#include <cstdint>

struct HeapHeader {
  std::uint64_t generation = 0;
  std::uint64_t clean_shutdown = 0;
  std::uint64_t checksum = 0;
};

struct Ctx {
  void persist(const void*, unsigned long) {}
};

struct Heap {
  Ctx ctx_;
  HeapHeader* hdr_ = nullptr;

  void ok_close() {
    hdr_->clean_shutdown = 1;
    ctx_.persist(hdr_, sizeof(HeapHeader));  // covered
  }

  void bad_open() {
    hdr_->generation += 1;   // BAD: never persisted in this function
    hdr_->clean_shutdown = 0;  // BAD
  }
};
