// Fixture: annotations that do not parse — the lint must flag
// bad-annotation and exit nonzero.
#include <atomic>

void f(std::atomic<int>& flag) {
  // dssq-lint: allow(raw-fence)
  std::atomic_thread_fence(std::memory_order_release);  // BAD: no reason
  flag.store(1, std::memory_order_relaxed);
}

void g(std::atomic<int>& flag) {
  // dssq-lint: allow(no-such-rule) unknown rule name
  std::atomic_thread_fence(std::memory_order_release);
  flag.store(1, std::memory_order_relaxed);
}
