// Fixture: a resolve function that mutates the persistent heap — resolve
// is read-only by the paper's contract (it reports the X[t] status, Axioms
// 1-4); repairs belong in recover().  The lint must flag resolve-pure and
// exit nonzero.
#include <atomic>
#include <cstdint>

struct Slot {
  std::atomic<std::uint64_t> word{0};
};

struct Ctx {
  void persist(const void*, unsigned long) {}
};

struct Queue {
  Ctx ctx_;
  Slot* x_ = nullptr;

  void announce(unsigned tid, std::uint64_t w) {
    x_[tid].word.store(w);
    ctx_.persist(&x_[tid], sizeof(Slot));  // establishes x_ as persistent
  }

  bool resolve_enqueue(unsigned tid) {
    std::uint64_t w = x_[tid].word.load();
    if (w == 0) {
      // BAD: resolve must not write the announcement, let alone persist it.
      x_[tid].word.store(1);
      ctx_.persist(&x_[tid], sizeof(Slot));
      return false;
    }
    return true;
  }
};
