// Fixture: a justified allow() on a cold-path persist inside a
// flight-recorder file — the lint must exit 0 (the annotation is consumed,
// so unused-allow must not fire either).
#include <cstdint>

struct Ctx {
  void persist(const void*, unsigned long) {}
};

struct BlockHeaderStamp {
  std::uint64_t magic = 0;
};

void format_block(Ctx& ctx, BlockHeaderStamp& stamp) {
  stamp.magic = 1;
  // dssq-lint: allow(trace-hot-path) format() is a cold path: the fresh
  // block is made durable once, before any emitter can reach it; emit()
  // itself stays persist-free.
  ctx.persist(&stamp, sizeof(stamp));
}
