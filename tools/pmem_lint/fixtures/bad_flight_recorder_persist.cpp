// Fixture: persist/fence calls inside a flight-recorder hot path — the
// trace-hot-path rule must flag both (the filename contains
// "flight_recorder", which is what classifies the file).  The recorder is
// volatile by design: torn tails are detected by per-record stamps on the
// read side, so a barrier here would tax every traced operation.
#include <cstdint>

struct Ctx {
  void persist(const void*, unsigned long) {}
  void fence() {}
};

struct Record {
  std::uint64_t seq = 0;
  std::uint64_t data = 0;
};

void emit(Ctx& ctx, Record& r, std::uint64_t seq, std::uint64_t data) {
  r.seq = seq;
  r.data = data;
  ctx.persist(&r, sizeof(r));  // BAD: persist on the recorder hot path
  ctx.fence();                 // BAD: fence on the recorder hot path
}
