// Fixture: stores to persistent addresses where every path to function
// exit carries a covering persist — including branchy shapes the linear
// scanner could not reason about.  The lint must exit 0.
#include <atomic>
#include <cstdint>

struct Slot {
  std::atomic<std::uint64_t> word{0};
};
struct Node {
  std::atomic<Node*> next{nullptr};
};

struct Ctx {
  void persist(const void*, unsigned long) {}
  void flush(const void*, unsigned long) {}
  void fence() {}
};

struct Queue {
  Ctx ctx_;
  Slot* x_ = nullptr;
  std::atomic<bool> lock_{false};

  void persist_in_both_arms(unsigned tid, bool combined) {
    x_[tid].word.store(1);
    if (combined) {
      ctx_.persist(&x_[tid], sizeof(Slot));
    } else {
      ctx_.flush(&x_[tid], sizeof(Slot));
      ctx_.fence();
    }
  }

  void early_return_before_store(unsigned tid, bool noop) {
    if (noop) {
      return;  // fine: nothing stored yet on this path
    }
    x_[tid].word.store(2);
    ctx_.persist(&x_[tid], sizeof(Slot));
  }

  void cas_in_condition(Node* last, Node* node) {
    // The failed-CAS arm writes nothing, so only the success arm needs the
    // persist (the engine re-homes the CAS onto that arm).
    Node* expected = nullptr;
    if (last->next.compare_exchange_strong(expected, node)) {
      ctx_.persist(&last->next, sizeof(last->next));
    }
  }

  bool lock_released_on_all_paths(bool bail) {
    if (lock_.exchange(true)) {
      return false;  // acquisition failed — nothing held
    }
    if (bail) {
      lock_.store(false);
      return false;
    }
    lock_.store(false);
    return true;
  }

  void persist_inside_loop(unsigned tid, int n) {
    for (int i = 0; i < n; ++i) {
      x_[tid].word.store(static_cast<std::uint64_t>(i));
      ctx_.persist(&x_[tid], sizeof(Slot));
    }
  }
};
