// pmem_lint — persistency-discipline lint for the DSS queue repository.
//
//   pmem_lint [--verbose] [--sarif <file>] <file-or-directory>...
//
// Scans .hpp/.cpp files (directories recursively, skipping directories
// named "fixtures" — the lint's own known-bad test inputs), applies the
// rules documented in rules.hpp / docs/static-analysis.md, prints one line
// per violation ("file:line: [rule] message"), optionally writes the same
// findings as SARIF 2.1.0 for GitHub code scanning, and exits nonzero when
// any unannotated violation remains.
//
// Since PR 7 the persistency rules are PATH-SENSITIVE: every function body
// is parsed into a statement-level CFG (cfg.hpp — branches, loops, early
// returns, short-circuit &&/||, lambdas as separate functions) and the
// rules run as dataflow analyses over it (dataflow.hpp).  "Followed by a
// covering persist" therefore means on every path from the store to
// function exit; a flush sitting on one arm of an `if` no longer passes.
//
// Built with nothing but C++20 — the tool is a token/structure scanner,
// not a compiler plugin, so it runs in any environment the library itself
// builds in.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cfg.hpp"
#include "dataflow.hpp"
#include "lexer.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace pmem_lint {
namespace {

namespace fs = std::filesystem;

constexpr const char* kVersion = "0.3.0";

bool path_ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct FileReport {
  std::vector<Violation> violations;
  std::size_t functions_scanned = 0;
  std::size_t events_seen = 0;
};

// ---- per-function path-sensitive analyses ---------------------------------

/// Events per CFG node, extracted once and shared by every rule.
struct NodeEvents {
  std::vector<std::vector<Event>> by_node;
  std::vector<bool> reachable;
};

NodeEvents extract_node_events(const std::vector<Token>& toks,
                               const Cfg& cfg) {
  NodeEvents ne;
  ne.by_node.resize(cfg.nodes.size());
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    const CfgNode& node = cfg.nodes[n];
    if (node.begin < node.end) {
      ne.by_node[n] =
          extract_events(toks, node.begin, node.end, node.holes);
    }
  }
  ne.reachable = cfg.reachable();
  return ne;
}

bool in_family(const std::vector<Segments>& family, const Segments& expr) {
  for (const auto& base : family) {
    if (covers(base, expr)) return true;
  }
  return false;
}

/// PaddedPtr hint cells (head_/tail_/announce_ `.ptr`): recovery repairs
/// stale hints (Fig. 6 lines 65-69), so their CASes deliberately skip the
/// flush — exempt from the coverage and ordering rules.
bool is_ptr_hint_cas(const Event& ev) {
  return ev.kind == EventKind::kCas && !ev.expr.empty() &&
         ev.expr.back() == "ptr";
}

using Flag = std::function<void(const char*, int, std::string)>;

/// persist-after-store / persist-after-cas / header-persist: a write to a
/// persistent address must have a covering persist()/flush() on EVERY path
/// from the write to function exit.  Backward must-analysis: facts are the
/// address families persisted downstream.
void check_persist_coverage(const std::vector<Token>& toks, const Cfg& cfg,
                            const NodeEvents& ne,
                            const std::vector<Segments>& family,
                            const Flag& flag) {
  (void)toks;
  // Fact universe: unique persist/flush argument families in this function.
  std::vector<Segments> bases;
  auto base_id = [&](const Segments& s) -> std::size_t {
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (bases[i] == s) return i;
    }
    return bases.size();
  };
  for (const auto& evs : ne.by_node) {
    for (const Event& ev : evs) {
      if ((ev.kind == EventKind::kPersist || ev.kind == EventKind::kFlush) &&
          !ev.expr.empty() && base_id(ev.expr) == bases.size()) {
        bases.push_back(ev.expr);
      }
    }
  }
  const std::size_t nfacts = bases.size();

  auto covered_by = [&](const FactSet& state, const Segments& expr,
                        bool header) {
    for (std::size_t f = 0; f < nfacts; ++f) {
      if (!state.test(f)) continue;
      if (covers(bases[f], expr)) return true;
      if (header && bases[f].size() == 1 && bases[f][0] == kHeaderHelper) {
        return true;
      }
    }
    return false;
  };

  // Node transfers, composed backward (last event first).
  std::vector<FactSet> gen(cfg.nodes.size(), FactSet(nfacts));
  std::vector<FactSet> kill(cfg.nodes.size(), FactSet(nfacts));
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    for (const Event& ev : ne.by_node[n]) {
      if (ev.kind == EventKind::kPersist || ev.kind == EventKind::kFlush) {
        if (!ev.expr.empty()) gen[n].set(base_id(ev.expr));
      }
    }
  }
  const FlowResult flow = solve_flow(cfg, nfacts, FlowDir::kBackward,
                                     FlowMeet::kIntersect, gen, kill);

  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (!ne.reachable[n]) continue;
    const auto& evs = ne.by_node[n];
    // Walk the node's events last-to-first; `state` holds the facts true
    // just AFTER the event under inspection.
    FactSet state = flow.out[n];
    for (std::size_t e = evs.size(); e-- > 0;) {
      const Event& ev = evs[e];
      if (ev.kind == EventKind::kHeaderAssign) {
        if (!covered_by(state, ev.expr, /*header=*/true)) {
          flag("header-persist", ev.line,
               "segment-header store to '" + segments_to_string(ev.expr) +
                   "' is not followed by a covering persist() (or a "
                   "persist_header() helper) on every path to function "
                   "exit — open() validates the header before trusting "
                   "the heap");
        }
      } else if (ev.kind == EventKind::kStore ||
                 ev.kind == EventKind::kCas) {
        if (in_family(family, ev.expr) && !is_ptr_hint_cas(ev) &&
            !covered_by(state, ev.expr, /*header=*/false)) {
          const char* rule = ev.kind == EventKind::kStore
                                 ? "persist-after-store"
                                 : "persist-after-cas";
          const char* what =
              ev.kind == EventKind::kStore ? "store to" : "CAS on";
          flag(rule, ev.line,
               std::string(what) + " persistent address '" +
                   segments_to_string(ev.expr) +
                   "' lacks a covering persist()/flush() on at least one "
                   "path to function exit (family inferred from this "
                   "file's persist calls)");
        }
      }
      if ((ev.kind == EventKind::kPersist || ev.kind == EventKind::kFlush) &&
          !ev.expr.empty()) {
        state.set(base_id(ev.expr));
      }
    }
  }
}

/// persist-order: on every path into a CAS on a persistent address, any
/// prior flush() must already be drained by a fence()/fence_combined()
/// (persist() fences internally).  Forward may-analysis: facts are
/// flushed-but-unfenced families; any pending fact at a publishing CAS is
/// a misordering.  A plain atomic store to a tail-index on a persistent
/// address (the submission-ring publish idiom: entry payload + checksum
/// persisted, THEN the tail store that publishes them) is a publication
/// too, and is held to the same ordering.
void check_persist_order(const Cfg& cfg, const NodeEvents& ne,
                         const std::vector<Segments>& family,
                         const Flag& flag) {
  std::vector<Segments> bases;
  auto base_id = [&](const Segments& s) -> std::size_t {
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (bases[i] == s) return i;
    }
    return bases.size();
  };
  auto is_publish_store = [&](const Event& ev) {
    return ev.kind == EventKind::kStore && is_publish_index(ev.expr) &&
           in_family(family, ev.expr);
  };
  bool any_pub = false;
  for (const auto& evs : ne.by_node) {
    for (const Event& ev : evs) {
      if (ev.kind == EventKind::kFlush && !ev.expr.empty() &&
          base_id(ev.expr) == bases.size()) {
        bases.push_back(ev.expr);
      }
      any_pub = any_pub || ev.kind == EventKind::kCas || is_publish_store(ev);
    }
  }
  const std::size_t nfacts = bases.size();
  if (nfacts == 0 || !any_pub) return;

  std::vector<FactSet> gen(cfg.nodes.size(), FactSet(nfacts));
  std::vector<FactSet> kill(cfg.nodes.size(), FactSet(nfacts));
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    std::vector<FactSet> gens, kills;
    for (const Event& ev : ne.by_node[n]) {
      FactSet g(nfacts), k(nfacts);
      if (ev.kind == EventKind::kFlush && !ev.expr.empty()) {
        g.set(base_id(ev.expr));
      } else if (ev.kind == EventKind::kFence ||
                 ev.kind == EventKind::kPersist) {
        k = FactSet::all(nfacts);
      }
      gens.push_back(std::move(g));
      kills.push_back(std::move(k));
    }
    compose_transfer(gens, kills, gen[n], kill[n]);
  }
  const FlowResult flow = solve_flow(cfg, nfacts, FlowDir::kForward,
                                     FlowMeet::kUnion, gen, kill);

  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (!ne.reachable[n]) continue;
    FactSet state = flow.in[n];
    for (const Event& ev : ne.by_node[n]) {
      const bool pub_cas = ev.kind == EventKind::kCas &&
                           in_family(family, ev.expr) && !is_ptr_hint_cas(ev);
      if ((pub_cas || is_publish_store(ev)) && state.any()) {
        std::string pending;
        for (std::size_t f = 0; f < nfacts; ++f) {
          if (!state.test(f)) continue;
          if (!pending.empty()) pending += "', '";
          pending += segments_to_string(bases[f]);
        }
        flag("persist-order", ev.line,
             std::string(pub_cas ? "publishing CAS on '"
                                 : "tail-index publish store to '") +
                 segments_to_string(ev.expr) +
                 "' is reachable with unfenced flush(es) of '" + pending +
                 "' pending — order is flush, fence()/fence_combined(), "
                 "then the " +
                 (pub_cas ? "CAS" : "publishing store") + ", on every path");
      }
      if (ev.kind == EventKind::kFlush && !ev.expr.empty()) {
        state.set(base_id(ev.expr));
      } else if (ev.kind == EventKind::kFence ||
                 ev.kind == EventKind::kPersist) {
        state.clear();
      }
    }
  }
}

/// lock-leak: an acquire must reach a release on ALL paths to exit.
/// Backward must-analysis; an RAII guard (empty expr) releases whatever
/// scope it guards, so it satisfies any acquire that precedes it.
void check_lock_leak(const Cfg& cfg, const NodeEvents& ne, const Flag& flag) {
  bool any_acquire = false;
  std::vector<Segments> rels;  // index 0 reserved for the RAII fact
  rels.push_back(Segments{});
  auto rel_id = [&](const Segments& s) -> std::size_t {
    for (std::size_t i = 0; i < rels.size(); ++i) {
      if (rels[i] == s) return i;
    }
    return rels.size();
  };
  for (const auto& evs : ne.by_node) {
    for (const Event& ev : evs) {
      any_acquire = any_acquire || ev.kind == EventKind::kLockAcquire;
      if (ev.kind == EventKind::kLockRelease &&
          rel_id(ev.expr) == rels.size()) {
        rels.push_back(ev.expr);
      }
    }
  }
  if (!any_acquire) return;
  const std::size_t nfacts = rels.size();

  std::vector<FactSet> gen(cfg.nodes.size(), FactSet(nfacts));
  std::vector<FactSet> kill(cfg.nodes.size(), FactSet(nfacts));
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    for (const Event& ev : ne.by_node[n]) {
      if (ev.kind == EventKind::kLockRelease) gen[n].set(rel_id(ev.expr));
    }
  }
  const FlowResult flow = solve_flow(cfg, nfacts, FlowDir::kBackward,
                                     FlowMeet::kIntersect, gen, kill);

  auto released = [&](const FactSet& state, const Segments& acq) {
    if (state.test(0)) return true;  // RAII guard downstream
    for (std::size_t f = 1; f < nfacts; ++f) {
      if (!state.test(f)) continue;
      if (rels[f] == acq || covers(rels[f], acq) || covers(acq, rels[f])) {
        return true;
      }
    }
    return false;
  };

  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (!ne.reachable[n]) continue;
    const auto& evs = ne.by_node[n];
    FactSet state = flow.out[n];
    for (std::size_t e = evs.size(); e-- > 0;) {
      const Event& ev = evs[e];
      if (ev.kind == EventKind::kLockAcquire && !released(state, ev.expr)) {
        flag("lock-leak", ev.line,
             "lock acquire on '" + segments_to_string(ev.expr) +
                 "' does not reach a release (store(false)/unlock()/RAII "
                 "guard) on every path to function exit — an early return "
                 "leaks the combiner role and wedges every later batch");
      }
      if (ev.kind == EventKind::kLockRelease) state.set(rel_id(ev.expr));
    }
  }
}

/// resolve-pure: resolve bodies are read-only — no persist/flush calls, no
/// writes to persistent addresses, no header stores.
void check_resolve_pure(const Cfg& cfg, const NodeEvents& ne,
                        const std::vector<Segments>& family,
                        const Flag& flag) {
  if (!cfg.is_resolve) return;
  const std::string where =
      cfg.name.empty() ? "a lambda inside a resolve function"
                       : "'" + cfg.name + "'";
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (!ne.reachable[n]) continue;
    for (const Event& ev : ne.by_node[n]) {
      if (ev.kind == EventKind::kPersist || ev.kind == EventKind::kFlush) {
        flag("resolve-pure", ev.line,
             "persist/flush call inside " + where +
                 " — resolve is read-only (it reports the X[t] status "
                 "without touching the heap; Axioms 1-4)");
      } else if ((ev.kind == EventKind::kStore ||
                  ev.kind == EventKind::kCas) &&
                 in_family(family, ev.expr)) {
        flag("resolve-pure", ev.line,
             "write to persistent address '" + segments_to_string(ev.expr) +
                 "' inside " + where +
                 " — resolve is read-only (repairs belong in recover() or "
                 "the exec paths)");
      } else if (ev.kind == EventKind::kHeaderAssign) {
        flag("resolve-pure", ev.line,
             "segment-header store inside " + where +
                 " — resolve is read-only");
      }
    }
  }
}

/// exec-single-store: within exec_* functions, at most one store to the
/// per-thread detectability word X[t] per path — the Figure-2
/// failure-atomicity argument needs the announcement to flip in one shot.
void check_exec_single_store(const Cfg& cfg, const NodeEvents& ne,
                             const Flag& flag) {
  if (!cfg.is_exec) return;
  bool any = false;
  for (const auto& evs : ne.by_node) {
    for (const Event& ev : evs) {
      if ((ev.kind == EventKind::kStore || ev.kind == EventKind::kCas) &&
          is_detectability_word(ev.expr)) {
        any = true;
      }
    }
  }
  if (!any) return;

  const std::size_t nfacts = 1;
  std::vector<FactSet> gen(cfg.nodes.size(), FactSet(nfacts));
  std::vector<FactSet> kill(cfg.nodes.size(), FactSet(nfacts));
  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    for (const Event& ev : ne.by_node[n]) {
      if ((ev.kind == EventKind::kStore || ev.kind == EventKind::kCas) &&
          is_detectability_word(ev.expr)) {
        gen[n].set(0);
      }
    }
  }
  const FlowResult flow = solve_flow(cfg, nfacts, FlowDir::kForward,
                                     FlowMeet::kUnion, gen, kill);

  for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (!ne.reachable[n]) continue;
    FactSet state = flow.in[n];
    for (const Event& ev : ne.by_node[n]) {
      if ((ev.kind == EventKind::kStore || ev.kind == EventKind::kCas) &&
          is_detectability_word(ev.expr)) {
        if (state.test(0)) {
          flag("exec-single-store", ev.line,
               "second store to the detectability word '" +
                   segments_to_string(ev.expr) +
                   "' on the same exec path — exec must update X[t] in "
                   "exactly one failure-atomic store (Figure 2)");
        }
        state.set(0);
      }
    }
  }
}

// ---- per-file driver ------------------------------------------------------

FileReport analyze_file(const std::string& display_path,
                        const std::string& contents) {
  FileReport report;
  LexOutput lexed = lex(contents);
  const std::vector<Token>& toks = lexed.tokens;
  AnnotationSet annotations = parse_annotations(display_path,
                                                lexed.lint_comments);
  annotations.resolve_targets(toks);
  for (auto& e : annotations.errors) report.violations.push_back(e);

  const bool is_tagged_ptr_impl =
      path_ends_with(display_path, "common/tagged_ptr.hpp");
  const bool is_metrics_impl =
      path_ends_with(display_path, "common/metrics.hpp") ||
      path_ends_with(display_path, "common/metrics.cpp");
  const bool is_pmem_impl =
      display_path.find("src/pmem/") != std::string::npos;
  // Flight-recorder / histogram implementation files: their hot path must
  // stay persist-free (see the trace-hot-path rule in rules.hpp).
  const bool is_trace_impl =
      display_path.find("flight_recorder") != std::string::npos ||
      display_path.find("histogram") != std::string::npos;
  // A file that adopted the fence coalescer anywhere must not mix raw
  // fences back in (combined-fence rule): one stray fence() on a converted
  // hot path silently re-serializes what combining amortizes.
  const bool uses_combining =
      !is_pmem_impl &&
      (contents.find("fence_combined") != std::string::npos ||
       contents.find("persist_combined") != std::string::npos);

  auto flag = [&](const char* rule, int line, std::string message) {
    if (annotations.consume(rule, line)) return;
    report.violations.push_back({display_path, line, rule,
                                 std::move(message)});
  };

  // ---- pass 1: token-local rules -----------------------------------------
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreprocessor) {
      if (!is_metrics_impl &&
          t.text.find("DSSQ_METRICS_ENABLED") != std::string::npos) {
        flag("metrics-gating", t.line,
             "DSSQ_METRICS_ENABLED conditional outside common/metrics.* — "
             "instrument through the metrics:: API, which already no-ops "
             "when the option is OFF");
      }
      continue;
    }
    if (t.kind == TokKind::kIdent) {
      if (t.text == "atomic_thread_fence" || t.text == "_mm_sfence") {
        flag("raw-fence", t.line,
             "raw memory fence ('" + t.text +
                 "') — order persistence through Ctx::fence() so emulation, "
                 "CLWB and the crash simulator all observe it");
      } else if (t.text == "_mm_clwb" || t.text == "_mm_clflushopt" ||
                 t.text == "_mm_clflush") {
        flag("raw-writeback", t.line,
             "raw write-back intrinsic ('" + t.text +
                 "') — route flushes through Ctx::flush()");
      } else if (!is_pmem_impl &&
                 (t.text == "mmap" || t.text == "munmap" ||
                  t.text == "mremap" || t.text == "msync" ||
                  t.text == "MAP_SYNC")) {
        flag("mmap-confined", t.line,
             "'" + t.text +
                 "' outside src/pmem/ — file-mapping syscalls belong to "
                 "MmapBackend/PersistentHeap so flush/fence semantics, "
                 "crash hooks and metrics stay in one place");
      } else if (!is_metrics_impl && t.text == "DSSQ_METRICS_ENABLED") {
        flag("metrics-gating", t.line,
             "DSSQ_METRICS_ENABLED referenced outside common/metrics.*");
      } else if (!is_metrics_impl && t.text == "metrics" &&
                 i + 3 < toks.size() && toks[i + 1].text == "::" &&
                 toks[i + 2].text == "detail") {
        flag("metrics-gating", t.line,
             "metrics::detail is internal — use metrics::add()/snapshot()");
      }
      if (uses_combining && t.text == "fence" && is_call_site(toks, i)) {
        flag("combined-fence", t.line,
             "raw fence() in a file converted to fence_combined()/"
             "persist_combined() — route this call through the coalescer "
             "too, or annotate why this path must fence alone (recovery "
             "and constructors run single-threaded, so combining them "
             "buys nothing but costs nothing either)");
      }
      if (is_trace_impl &&
          (t.text.starts_with("persist") || t.text.starts_with("flush") ||
           t.text.starts_with("fence") || t.text == "msync" ||
           t.text == "fdatasync") &&
          is_call_site(toks, i)) {
        flag("trace-hot-path", t.line,
             "'" + t.text +
                 "' call inside the flight-recorder/histogram layer — the "
                 "recorder hot path is persist-free by design (torn tails "
                 "are handled by record stamps on the read side)");
      }
    }
    if (!is_tagged_ptr_impl) {
      if (t.kind == TokKind::kPunct && (t.text == "<<" || t.text == ">>") &&
          i + 1 < toks.size() && toks[i + 1].kind == TokKind::kNumber &&
          toks[i + 1].value >= 48 && toks[i + 1].value <= 63) {
        flag("tagged-bits", t.line,
             "shift by " + toks[i + 1].text +
                 " manipulates tag bits directly — use the TaggedWord API "
                 "(tag_bit/tags_of/address_bits/fits_in_address_bits)");
      }
      // Pure tag masks only: literals with tag bits set AND all 48 address
      // bits clear.  Dense 64-bit constants (hash multipliers, RNG seeds)
      // are legitimate and stay unflagged.
      // dssq-lint: allow(tagged-bits) the lint itself must spell out the
      // 48-bit address boundary to recognize raw tag-mask literals.
      constexpr std::uint64_t kTagBoundary = std::uint64_t{1} << 48;
      if (t.kind == TokKind::kNumber && t.value >= kTagBoundary &&
          (t.value & (kTagBoundary - 1)) == 0) {
        flag("tagged-bits", t.line,
             "integer literal " + t.text +
                 " is a raw tag-bit mask — use the TaggedWord API");
      }
    }
  }

  // ---- pass 2: path-sensitive persistency dataflow -----------------------
  const std::vector<Segments> family = collect_persist_family(toks);

  std::vector<Cfg> cfgs;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct || t.text != "{") continue;
    std::string name;
    if (!brace_opens_function(toks, i, &name)) continue;
    CfgBuilder builder(toks, cfgs);
    const bool is_resolve = name.starts_with("resolve");
    const bool is_exec = name.starts_with("exec");
    i = builder.build(i, std::move(name), is_resolve, is_exec) - 1;
  }

  for (const Cfg& cfg : cfgs) {
    ++report.functions_scanned;
    const NodeEvents ne = extract_node_events(toks, cfg);
    for (const auto& evs : ne.by_node) report.events_seen += evs.size();
    check_persist_coverage(toks, cfg, ne, family, flag);
    check_persist_order(cfg, ne, family, flag);
    check_lock_leak(cfg, ne, flag);
    check_resolve_pure(cfg, ne, family, flag);
    check_exec_single_store(cfg, ne, flag);
  }

  for (const auto& a : annotations.allowances) {
    if (!a.used) {
      report.violations.push_back(
          {display_path, a.line, "unused-allow",
           "allow() annotation suppressed nothing — remove it (stale "
           "exemptions hide future regressions)"});
    }
  }
  return report;
}

void collect_files(const fs::path& p, std::vector<fs::path>& out) {
  if (fs::is_directory(p)) {
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      // Directories named "fixtures" hold the lint's own known-bad test
      // inputs; scanning them through a directory argument would fail the
      // tree on purpose-built violations.  Explicit file arguments (how
      // the fixture self-tests invoke us) are always scanned.
      bool in_fixtures = false;
      for (const auto& part : entry.path()) {
        if (part == "fixtures") {
          in_fixtures = true;
          break;
        }
      }
      if (in_fixtures) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        out.push_back(entry.path());
      }
    }
  } else {
    out.push_back(p);
  }
}

}  // namespace
}  // namespace pmem_lint

int main(int argc, char** argv) {
  using namespace pmem_lint;
  bool verbose = false;
  std::string sarif_path;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::cerr << "pmem_lint: --sarif requires a file argument\n";
        return 2;
      }
      sarif_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pmem_lint [--verbose] [--sarif <file>] "
                   "<file-or-directory>...\n"
                   "Checks the repo's persistency and race disciplines with "
                   "path-sensitive dataflow; see docs/static-analysis.md.\n";
      return 0;
    } else {
      collect_files(arg, inputs);
    }
  }
  if (inputs.empty()) {
    std::cerr << "pmem_lint: no input files (try: pmem_lint src/)\n";
    return 2;
  }
  std::sort(inputs.begin(), inputs.end());

  std::vector<Violation> all_violations;
  std::size_t total_functions = 0;
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "pmem_lint: cannot read " << path.string() << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const FileReport report =
        analyze_file(path.generic_string(), ss.str());
    total_functions += report.functions_scanned;
    for (const auto& v : report.violations) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
      all_violations.push_back(v);
    }
    if (verbose) {
      std::cout << "  scanned " << path.generic_string() << ": "
                << report.functions_scanned << " functions, "
                << report.events_seen << " events, "
                << report.violations.size() << " violations\n";
    }
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "pmem_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    write_sarif(out, all_violations, kVersion);
    if (verbose) {
      std::cout << "pmem_lint: wrote SARIF (" << all_violations.size()
                << " results) to " << sarif_path << "\n";
    }
  }
  if (!all_violations.empty()) {
    std::cout << "pmem_lint: " << all_violations.size()
              << " violation(s); silence intentional ones with "
                 "'// dssq-lint: allow(<rule>) <justification>'\n";
    return 1;
  }
  if (verbose) {
    std::cout << "pmem_lint: clean (" << inputs.size() << " files, "
              << total_functions << " functions)\n";
  }
  return 0;
}
