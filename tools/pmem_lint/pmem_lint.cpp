// pmem_lint — persistency-discipline lint for the DSS queue repository.
//
//   pmem_lint [--verbose] <file-or-directory>...
//
// Scans .hpp/.cpp files (directories recursively), applies the rules
// documented in rules.hpp / docs/static-analysis.md, prints one line per
// violation ("file:line: [rule] message"), and exits nonzero when any
// unannotated violation remains.  Built with nothing but C++20 — the tool
// is a token/structure scanner, not a compiler plugin, so it runs in any
// environment the library itself builds in.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace pmem_lint {
namespace {

namespace fs = std::filesystem;

bool path_ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch";
}

/// Classify the '{' at token index `i`: does it open a function (or lambda)
/// body?  Heuristic: walking back over trailing specifiers and a trailing
/// return type lands on the ')' of a parameter list whose '(' is not
/// preceded by a control keyword.
bool opens_function_body(const std::vector<Token>& toks, std::size_t i) {
  std::size_t j = i;
  // Skip specifiers between the parameter list and the body, and a trailing
  // return type (`-> T`), and constructor initializer lists (`: a_(x), ...`).
  int depth = 0;
  while (j-- > 0) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct &&
        (t.text == ")" || t.text == "]" || t.text == ">")) {
      ++depth;
      continue;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == "(" || t.text == "[" || t.text == "<")) {
      if (depth == 0) return false;
      --depth;
      if (depth == 0 && t.text == "(") {
        // Parameter list candidate: check what precedes it.
        if (j == 0) return true;
        const Token& prev = toks[j - 1];
        if (prev.kind == TokKind::kIdent) return !is_control_keyword(prev.text);
        // `](...)` = lambda; `>(...)` = template-id call/ctor: treat the
        // lambda as a body, anything else as an expression.
        return prev.kind == TokKind::kPunct && prev.text == "]";
      }
      continue;
    }
    if (depth > 0) continue;
    if (t.kind == TokKind::kIdent || t.kind == TokKind::kNumber ||
        t.kind == TokKind::kString ||
        (t.kind == TokKind::kPunct &&
         (t.text == "," || t.text == ":" || t.text == "::" ||
          t.text == "->" || t.text == "&" || t.text == "&&" ||
          t.text == "*" || t.text == "."))) {
      continue;  // specifier, initializer list, or trailing return type
    }
    return false;
  }
  return false;
}

/// True when the identifier at `i` is a call (next token '(') that should
/// produce a persist/flush event.  Declarations (`void flush(const void*`)
/// are filtered by the preceding token.
bool is_call_site(const std::vector<Token>& toks, std::size_t i) {
  if (i + 1 >= toks.size()) return false;
  const Token& next = toks[i + 1];
  if (next.kind != TokKind::kPunct || next.text != "(") return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kPunct) {
    // `.persist(` / `->persist(` / start of statement; `::` would be a
    // qualified declaration or call — treat as call (harmless either way).
    return prev.text != "~";
  }
  // Identifier before it: a declaration (`void persist(`) unless it is a
  // statement keyword.
  return prev.text == "return" || prev.text == "else" || prev.text == "do";
}

struct FileReport {
  std::vector<Violation> violations;
  std::size_t functions_scanned = 0;
  std::size_t events_seen = 0;
};

/// Pseudo-argument recorded for argument-less persist_header()-style
/// helpers; treated as covering any header-rooted assignment.
const std::string kHeaderHelper = "<persist-header-helper>";

FileReport analyze_file(const std::string& display_path,
                        const std::string& contents) {
  FileReport report;
  LexOutput lexed = lex(contents);
  const std::vector<Token>& toks = lexed.tokens;
  AnnotationSet annotations = parse_annotations(display_path,
                                                lexed.lint_comments);
  annotations.resolve_targets(toks);
  for (auto& e : annotations.errors) report.violations.push_back(e);

  const bool is_tagged_ptr_impl =
      path_ends_with(display_path, "common/tagged_ptr.hpp");
  const bool is_metrics_impl =
      path_ends_with(display_path, "common/metrics.hpp") ||
      path_ends_with(display_path, "common/metrics.cpp");
  const bool is_pmem_impl =
      display_path.find("src/pmem/") != std::string::npos;
  // Flight-recorder / histogram implementation files: their hot path must
  // stay persist-free (see the trace-hot-path rule in rules.hpp).
  const bool is_trace_impl =
      display_path.find("flight_recorder") != std::string::npos ||
      display_path.find("histogram") != std::string::npos;
  // A file that adopted the fence coalescer anywhere must not mix raw
  // fences back in (combined-fence rule): one stray fence() on a converted
  // hot path silently re-serializes what combining amortizes.
  const bool uses_combining =
      !is_pmem_impl &&
      (contents.find("fence_combined") != std::string::npos ||
       contents.find("persist_combined") != std::string::npos);

  auto flag = [&](const char* rule, int line, std::string message) {
    if (annotations.consume(rule, line)) return;
    report.violations.push_back({display_path, line, rule,
                                 std::move(message)});
  };

  // ---- pass 1: token-local rules -----------------------------------------
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPreprocessor) {
      if (!is_metrics_impl &&
          t.text.find("DSSQ_METRICS_ENABLED") != std::string::npos) {
        flag("metrics-gating", t.line,
             "DSSQ_METRICS_ENABLED conditional outside common/metrics.* — "
             "instrument through the metrics:: API, which already no-ops "
             "when the option is OFF");
      }
      continue;
    }
    if (t.kind == TokKind::kIdent) {
      if (t.text == "atomic_thread_fence" || t.text == "_mm_sfence") {
        flag("raw-fence", t.line,
             "raw memory fence ('" + t.text +
                 "') — order persistence through Ctx::fence() so emulation, "
                 "CLWB and the crash simulator all observe it");
      } else if (t.text == "_mm_clwb" || t.text == "_mm_clflushopt" ||
                 t.text == "_mm_clflush") {
        flag("raw-writeback", t.line,
             "raw write-back intrinsic ('" + t.text +
                 "') — route flushes through Ctx::flush()");
      } else if (!is_pmem_impl &&
                 (t.text == "mmap" || t.text == "munmap" ||
                  t.text == "mremap" || t.text == "msync" ||
                  t.text == "MAP_SYNC")) {
        flag("mmap-confined", t.line,
             "'" + t.text +
                 "' outside src/pmem/ — file-mapping syscalls belong to "
                 "MmapBackend/PersistentHeap so flush/fence semantics, "
                 "crash hooks and metrics stay in one place");
      } else if (!is_metrics_impl && t.text == "DSSQ_METRICS_ENABLED") {
        flag("metrics-gating", t.line,
             "DSSQ_METRICS_ENABLED referenced outside common/metrics.*");
      } else if (!is_metrics_impl && t.text == "metrics" &&
                 i + 3 < toks.size() && toks[i + 1].text == "::" &&
                 toks[i + 2].text == "detail") {
        flag("metrics-gating", t.line,
             "metrics::detail is internal — use metrics::add()/snapshot()");
      }
      if (uses_combining && t.text == "fence" && is_call_site(toks, i)) {
        flag("combined-fence", t.line,
             "raw fence() in a file converted to fence_combined()/"
             "persist_combined() — route this call through the coalescer "
             "too, or annotate why this path must fence alone (recovery "
             "and constructors run single-threaded, so combining them "
             "buys nothing but costs nothing either)");
      }
      if (is_trace_impl &&
          (t.text.starts_with("persist") || t.text.starts_with("flush") ||
           t.text.starts_with("fence") || t.text == "msync" ||
           t.text == "fdatasync") &&
          is_call_site(toks, i)) {
        flag("trace-hot-path", t.line,
             "'" + t.text +
                 "' call inside the flight-recorder/histogram layer — the "
                 "recorder hot path is persist-free by design (torn tails "
                 "are handled by record stamps on the read side)");
      }
    }
    if (!is_tagged_ptr_impl) {
      if (t.kind == TokKind::kPunct && (t.text == "<<" || t.text == ">>") &&
          i + 1 < toks.size() && toks[i + 1].kind == TokKind::kNumber &&
          toks[i + 1].value >= 48 && toks[i + 1].value <= 63) {
        flag("tagged-bits", t.line,
             "shift by " + toks[i + 1].text +
                 " manipulates tag bits directly — use the TaggedWord API "
                 "(tag_bit/tags_of/address_bits/fits_in_address_bits)");
      }
      // Pure tag masks only: literals with tag bits set AND all 48 address
      // bits clear.  Dense 64-bit constants (hash multipliers, RNG seeds)
      // are legitimate and stay unflagged.
      if (t.kind == TokKind::kNumber && t.value >= (std::uint64_t{1} << 48) &&
          (t.value & ((std::uint64_t{1} << 48) - 1)) == 0) {
        flag("tagged-bits", t.line,
             "integer literal " + t.text +
                 " is a raw tag-bit mask — use the TaggedWord API");
      }
    }
  }

  // ---- pass 2: per-function persist discipline ---------------------------
  // Family of persistent address expressions = every persist()/flush() first
  // argument in the file.
  std::vector<Segments> family;
  auto add_family = [&](const Segments& s) {
    if (s.empty()) return;
    for (const auto& f : family) {
      if (f == s) return;
    }
    family.push_back(s);
  };

  struct Body {
    bool is_function = false;
    std::size_t function_id = 0;  // outermost enclosing function
  };
  std::vector<Body> body_stack;
  std::vector<FunctionEvents> functions;
  std::size_t current_function = std::string::npos;

  auto record = [&](EventKind kind, Segments expr, int line) {
    if (current_function == std::string::npos) return;
    functions[current_function].events.push_back(
        {kind, std::move(expr), line});
    ++report.events_seen;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct && t.text == "{") {
      Body b;
      if (current_function == std::string::npos &&
          opens_function_body(toks, i)) {
        b.is_function = true;
        functions.emplace_back();
        current_function = functions.size() - 1;
        ++report.functions_scanned;
      }
      b.function_id = current_function;
      body_stack.push_back(b);
      continue;
    }
    if (t.kind == TokKind::kPunct && t.text == "}") {
      if (!body_stack.empty()) {
        if (body_stack.back().is_function) {
          current_function = std::string::npos;
        }
        body_stack.pop_back();
      }
      continue;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == "=" || t.text == "|=" || t.text == "&=" ||
         t.text == "+=" || t.text == "-=" || t.text == "^=")) {
      // Raw (non-atomic) assignment: only segment-header targets are
      // policed (header-persist); everything else persists via the
      // store/CAS rules above.
      const std::size_t begin = expr_begin(toks, i);
      Segments target = normalize_expr(toks, begin, i);
      if (is_header_rooted(target)) {
        record(EventKind::kHeaderAssign, std::move(target), t.line);
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "store" || t.text == "compare_exchange_strong" ||
        t.text == "compare_exchange_weak") {
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      if (i == 0) continue;
      const Token& prev = toks[i - 1];
      if (prev.kind != TokKind::kPunct ||
          (prev.text != "." && prev.text != "->")) {
        continue;
      }
      const std::size_t begin = expr_begin(toks, i - 1);
      Segments target = normalize_expr(toks, begin, i - 1);
      record(t.text == "store" ? EventKind::kStore : EventKind::kCas,
             std::move(target), t.line);
      continue;
    }
    // `persist`/`flush` calls, including helper wrappers that follow the
    // naming convention (e.g. `persist_clear_dirty(addr, ...)`): the first
    // argument names the covered address.
    if (t.text.starts_with("persist") || t.text.starts_with("flush")) {
      if (!is_call_site(toks, i)) continue;
      auto [abegin, aend] = first_arg(toks, i + 1);
      Segments arg = normalize_expr(toks, abegin, aend);
      // persist_combined has the identical persistence contract to
      // persist, so it defines the file's persistent-address family too.
      const bool exact = t.text == "persist" || t.text == "flush" ||
                         t.text == "persist_combined";
      if (exact) add_family(arg);
      if (arg.empty() && (t.text.find("header") != std::string::npos ||
                          t.text.find("hdr") != std::string::npos)) {
        // An argument-less persist_header()-style helper covers every
        // header field for the header-persist rule.
        arg = {kHeaderHelper};
      }
      record(exact && t.text == "flush" ? EventKind::kFlush
                                        : EventKind::kPersist,
             std::move(arg), t.line);
      continue;
    }
  }

  for (const auto& fn : functions) {
    for (std::size_t e = 0; e < fn.events.size(); ++e) {
      const Event& ev = fn.events[e];
      if (ev.kind == EventKind::kHeaderAssign) {
        bool covered = false;
        for (std::size_t k = e + 1; k < fn.events.size(); ++k) {
          const Event& later = fn.events[k];
          if (later.kind != EventKind::kPersist &&
              later.kind != EventKind::kFlush) {
            continue;
          }
          if (covers(later.expr, ev.expr) ||
              (later.expr.size() == 1 && later.expr[0] == kHeaderHelper)) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          flag("header-persist", ev.line,
               "segment-header store to '" + segments_to_string(ev.expr) +
                   "' is not followed by a covering persist() (or a "
                   "persist_header() helper) in this function — open() "
                   "validates the header before trusting the heap");
        }
        continue;
      }
      if (ev.kind != EventKind::kStore && ev.kind != EventKind::kCas) continue;
      bool persistent = false;
      for (const auto& base : family) {
        if (covers(base, ev.expr)) {
          persistent = true;
          break;
        }
      }
      if (!persistent) continue;
      if (ev.kind == EventKind::kCas && !ev.expr.empty() &&
          ev.expr.back() == "ptr") {
        // PaddedPtr hint cells (head_/tail_/announce_ `.ptr`): recovery
        // repairs stale hints (Fig. 6 lines 65-69), so their CASes are
        // deliberately not followed by a flush.
        continue;
      }
      bool covered = false;
      for (std::size_t k = e + 1; k < fn.events.size(); ++k) {
        const Event& later = fn.events[k];
        if ((later.kind == EventKind::kPersist ||
             later.kind == EventKind::kFlush) &&
            covers(later.expr, ev.expr)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        const char* rule = ev.kind == EventKind::kStore ? "persist-after-store"
                                                        : "persist-after-cas";
        const char* what = ev.kind == EventKind::kStore ? "store to"
                                                        : "CAS on";
        flag(rule, ev.line,
             std::string(what) + " persistent address '" +
                 segments_to_string(ev.expr) +
                 "' is not followed by a covering persist()/flush() in this "
                 "function (family inferred from this file's persist calls)");
      }
    }
  }

  for (const auto& a : annotations.allowances) {
    if (!a.used) {
      report.violations.push_back(
          {display_path, a.line, "unused-allow",
           "allow() annotation suppressed nothing — remove it (stale "
           "exemptions hide future regressions)"});
    }
  }
  return report;
}

void collect_files(const fs::path& p, std::vector<fs::path>& out) {
  if (fs::is_directory(p)) {
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        out.push_back(entry.path());
      }
    }
  } else {
    out.push_back(p);
  }
}

}  // namespace
}  // namespace pmem_lint

int main(int argc, char** argv) {
  using namespace pmem_lint;
  bool verbose = false;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pmem_lint [--verbose] <file-or-directory>...\n"
                   "Checks the repo's persistency and race disciplines; see "
                   "docs/static-analysis.md.\n";
      return 0;
    } else {
      collect_files(arg, inputs);
    }
  }
  if (inputs.empty()) {
    std::cerr << "pmem_lint: no input files (try: pmem_lint src/)\n";
    return 2;
  }
  std::sort(inputs.begin(), inputs.end());

  std::size_t total_violations = 0;
  std::size_t total_functions = 0;
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "pmem_lint: cannot read " << path.string() << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const FileReport report =
        analyze_file(path.generic_string(), ss.str());
    total_functions += report.functions_scanned;
    for (const auto& v : report.violations) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
      ++total_violations;
    }
    if (verbose) {
      std::cout << "  scanned " << path.generic_string() << ": "
                << report.functions_scanned << " functions, "
                << report.events_seen << " events, "
                << report.violations.size() << " violations\n";
    }
  }
  if (total_violations != 0) {
    std::cout << "pmem_lint: " << total_violations
              << " violation(s); silence intentional ones with "
                 "'// dssq-lint: allow(<rule>) <justification>'\n";
    return 1;
  }
  if (verbose) {
    std::cout << "pmem_lint: clean (" << inputs.size() << " files, "
              << total_functions << " functions)\n";
  }
  return 0;
}
