// Unit-style self-test of the pmem_lint CFG builder (cfg.hpp).
//
// The production fixtures exercise the rules end-to-end; this test pins the
// graph SHAPES the builder must produce — loops get back edges, early
// returns edge into the synthetic exit, short-circuit operands become
// maybe-executed nodes, condition writes are re-homed onto the arm that
// wrote, lambdas become separate functions — so a builder regression shows
// up as a named structural failure instead of a mysterious rule flip.
#include <cstdio>
#include <string>
#include <vector>

#include "cfg.hpp"
#include "lexer.hpp"

namespace {

using namespace pmem_lint;

int failures = 0;

#define CHECK(cond, msg)                                       \
  do {                                                         \
    if (!(cond)) {                                             \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, msg); \
      ++failures;                                              \
    }                                                          \
  } while (0)

struct Built {
  std::vector<Token> toks;
  std::vector<Cfg> cfgs;
};

Built build(const std::string& src, bool is_resolve = false,
            bool is_exec = false) {
  Built b;
  b.toks = lex(src).tokens;
  for (std::size_t i = 0; i < b.toks.size(); ++i) {
    if (b.toks[i].kind != TokKind::kPunct || b.toks[i].text != "{") continue;
    std::string name;
    if (!brace_opens_function(b.toks, i, &name)) continue;
    CfgBuilder builder(b.toks, b.cfgs);
    i = builder.build(i, std::move(name), is_resolve, is_exec) - 1;
  }
  return b;
}

std::size_t find_label(const Cfg& c, const char* label) {
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    if (std::string(c.nodes[i].label) == label) return i;
  }
  return kNoNode;
}

std::size_t count_label(const Cfg& c, const char* label) {
  std::size_t n = 0;
  for (const auto& node : c.nodes) {
    if (std::string(node.label) == label) ++n;
  }
  return n;
}

bool has_edge(const Cfg& c, std::size_t u, std::size_t v) {
  if (u == kNoNode || v == kNoNode) return false;
  for (std::size_t s : c.nodes[u].succ) {
    if (s == v) return true;
  }
  return false;
}

std::size_t count_preds(const Cfg& c, std::size_t v) {
  std::size_t n = 0;
  for (const auto& node : c.nodes) {
    for (std::size_t s : node.succ) {
      if (s == v) ++n;
    }
  }
  return n;
}

bool has_back_edge(const Cfg& c) {
  for (std::size_t u = 0; u < c.nodes.size(); ++u) {
    for (std::size_t s : c.nodes[u].succ) {
      if (s < u && s != c.exit) return true;
    }
  }
  return false;
}

void test_straight_line() {
  const Built b = build("void f() { a(); b(); }");
  CHECK(b.cfgs.size() == 1, "straight line: one cfg");
  const Cfg& c = b.cfgs[0];
  CHECK(c.name == "f", "straight line: declarator name extracted");
  CHECK(!has_back_edge(c), "straight line: no back edges");
  const auto reach = c.reachable();
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    CHECK(reach[i], "straight line: every node reachable");
  }
  CHECK(count_preds(c, c.exit) == 1, "straight line: one path into exit");
}

void test_early_return() {
  const Built b = build("void f() { if (a) { return; } b(); }");
  const Cfg& c = b.cfgs[0];
  CHECK(count_preds(c, c.exit) == 2,
        "early return: both the return and the fall-through tail reach exit");
  const std::size_t ret = find_label(c, "return");
  CHECK(ret != kNoNode, "early return: return statement gets a node");
  CHECK(has_edge(c, ret, c.exit), "early return: return edges into exit");
  const std::size_t join = find_label(c, "join");
  CHECK(join != kNoNode && !has_edge(c, ret, join),
        "early return: no fall-through edge out of a return");
}

void test_while_loop() {
  const Built b = build("void f() { while (c) { a(); } b(); }");
  const Cfg& c = b.cfgs[0];
  CHECK(has_back_edge(c), "while: loop has a back edge");
  const std::size_t head = find_label(c, "loop-head");
  const std::size_t brk = find_label(c, "loop-exit");
  CHECK(head != kNoNode && brk != kNoNode, "while: head and exit nodes");
  CHECK(count_preds(c, head) >= 2,
        "while: head entered from above AND from the back edge");
  const auto reach = c.reachable();
  CHECK(brk != kNoNode && reach[brk], "while: loop exit reachable");
}

void test_infinite_loop_dead_tail() {
  const Built b = build("void f() { while (true) { return; } }");
  const Cfg& c = b.cfgs[0];
  const std::size_t brk = find_label(c, "loop-exit");
  CHECK(brk != kNoNode, "while(true): loop-exit node exists");
  const auto reach = c.reachable();
  CHECK(!reach[brk],
        "while(true) whose only exit returns: fall-through is dead code");
}

void test_for_loop() {
  const Built b = build("void f() { for (int i = 0; i < n; ++i) { a(); } }");
  const Cfg& c = b.cfgs[0];
  const std::size_t head = find_label(c, "loop-head");
  const std::size_t inc = find_label(c, "for-inc");
  CHECK(find_label(c, "for-init") != kNoNode, "for: init node");
  CHECK(head != kNoNode && inc != kNoNode, "for: head and increment nodes");
  CHECK(has_edge(c, inc, head), "for: increment closes the back edge");
}

void test_do_while() {
  const Built b = build("void f() { do { a(); } while (c); b(); }");
  const Cfg& c = b.cfgs[0];
  CHECK(has_back_edge(c), "do-while: back edge present");
  const std::size_t head = find_label(c, "loop-head");
  CHECK(head != kNoNode && count_preds(c, head) >= 2,
        "do-while: condition feeds the head again");
}

void test_continue_break() {
  const Built b = build(
      "void f() { while (c) { if (x) { continue; } if (y) { break; } a(); } "
      "b(); }");
  const Cfg& c = b.cfgs[0];
  const std::size_t head = find_label(c, "loop-head");
  const std::size_t brk = find_label(c, "loop-exit");
  CHECK(count_preds(c, head) >= 3,
        "continue: edges from entry, back edge, and the continue");
  CHECK(count_preds(c, brk) >= 2,
        "break: loop exit entered by both the condition and the break");
}

void test_short_circuit() {
  const Built b = build("void f() { a() && b() && c(); d(); }");
  const Cfg& c = b.cfgs[0];
  CHECK(count_label(c, "shortcircuit") == 2,
        "short-circuit: each later operand is its own maybe-executed node");
  const std::size_t join = find_label(c, "join");
  CHECK(join != kNoNode, "short-circuit: operands re-join");
  // The first operand can skip straight to the join (b and c unevaluated).
  std::size_t first = kNoNode;
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    if (std::string(c.nodes[i].label) == "stmt") {
      first = i;
      break;
    }
  }
  CHECK(first != kNoNode && has_edge(c, first, join),
        "short-circuit: first operand has a skip edge to the join");
}

void test_switch_fallthrough() {
  const Built b = build(
      "void f(int k) { switch (k) { case 1: a(); break; case 2: b(); "
      "default: c(); } d(); }");
  const Cfg& c = b.cfgs[0];
  const std::size_t head = find_label(c, "switch-head");
  CHECK(head != kNoNode && c.nodes[head].succ.size() == 3,
        "switch: head dispatches to each of the three labels");
  // case 2 has no break: its body must fall through into default.
  CHECK(count_label(c, "case") == 3, "switch: three case-entry nodes");
}

void test_cas_rehomed_to_success_arm() {
  const Built b = build(
      "void f() { if (p.compare_exchange_strong(e, n)) { done(); } "
      "after(); }");
  const Cfg& c = b.cfgs[0];
  const std::size_t cond = find_label(c, "cond");
  const std::size_t wn = find_label(c, "cond-write");
  CHECK(cond != kNoNode && wn != kNoNode,
        "cas-cond: condition and re-homed write nodes exist");
  CHECK(!c.nodes[cond].holes.empty(),
        "cas-cond: the CAS tokens are a hole in the condition node");
  CHECK(has_edge(c, cond, wn),
        "cas-cond: the write node hangs off the condition fork");
  // The write node is on the then-arm: its successor is the then statement,
  // not the join the untaken branch uses.
  const std::size_t join = find_label(c, "join");
  CHECK(join != kNoNode && !has_edge(c, wn, join),
        "cas-cond: success arm runs the then-branch, not the skip edge");
}

void test_exchange_rehomed_to_false_arm() {
  // `exchange(true)` returns the OLD value: `true` means somebody else
  // held the lock (no write by us), `false` means we acquired it.
  const Built b = build(
      "bool f() { if (lock_.exchange(true)) { return false; } work(); "
      "lock_.store(false); return true; }");
  const Cfg& c = b.cfgs[0];
  const std::size_t wn = find_label(c, "cond-write");
  CHECK(wn != kNoNode, "exchange-cond: acquire re-homed to a write node");
  const std::size_t join = find_label(c, "join");
  CHECK(join != kNoNode && has_edge(c, wn, join),
        "exchange-cond: the acquire is on the FALSE (fall-through) arm");
  const std::size_t ret = find_label(c, "return");
  CHECK(ret != kNoNode && !has_edge(c, wn, ret),
        "exchange-cond: the early return is the not-acquired arm");
}

void test_lambda_is_separate_function() {
  const Built b = build(
      "void resolve_f() { auto g = [&](int x) { a(x); }; b(); }",
      /*is_resolve=*/true);
  CHECK(b.cfgs.size() == 2, "lambda: carved into its own cfg");
  if (b.cfgs.size() == 2) {
    const Cfg& lambda = b.cfgs[0];  // depth-first: inner body first
    const Cfg& outer = b.cfgs[1];
    CHECK(lambda.name.empty(), "lambda: anonymous");
    CHECK(outer.name == "resolve_f", "lambda: enclosing name kept");
    CHECK(lambda.is_resolve,
          "lambda: inherits the enclosing resolve classification");
    bool hole_found = false;
    for (const auto& node : outer.nodes) {
      hole_found = hole_found || !node.holes.empty();
    }
    CHECK(hole_found,
          "lambda: enclosing statement skips the body via a hole");
  }
}

void test_nested_loops_and_returns() {
  const Built b = build(
      "int f() { for (;;) { while (g()) { if (h()) { return 1; } } "
      "if (done()) { break; } } return 0; }");
  const Cfg& c = b.cfgs[0];
  CHECK(has_back_edge(c), "nested: back edges survive nesting");
  CHECK(count_preds(c, c.exit) == 2, "nested: both returns reach exit");
  const auto reach = c.reachable();
  const std::size_t brk = find_label(c, "loop-exit");
  CHECK(brk != kNoNode && reach[brk],
        "nested: break makes the for(;;) exit reachable");
}

}  // namespace

int main() {
  test_straight_line();
  test_early_return();
  test_while_loop();
  test_infinite_loop_dead_tail();
  test_for_loop();
  test_do_while();
  test_continue_break();
  test_short_circuit();
  test_switch_fallthrough();
  test_cas_rehomed_to_success_arm();
  test_exchange_rehomed_to_false_arm();
  test_lambda_is_separate_function();
  test_nested_loops_and_returns();
  if (failures == 0) {
    std::printf("cfg_selftest: all checks passed\n");
    return 0;
  }
  std::printf("cfg_selftest: %d check(s) FAILED\n", failures);
  return 1;
}
