// crash_torture — long-running randomized crash-recovery torture for the
// DSS queue (the CI-grade version of the unit-test storms).
//
//   crash_torture [seconds] [threads] [seed]
//
// Repeatedly: run a multi-threaded storm of random detectable operations,
// crash the world at a random instant under a random survival adversary,
// run Figure-6 recovery, resolve every thread, and check exactly-once
// accounting (values neither lost nor duplicated).  Any violation aborts
// with a replayable seed.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/json_writer.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "harness/crash_harness.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

using namespace dssq;

namespace {

/// Monotone run-wide accumulation of the per-storm RecoveryTrace.  The
/// global counters only mirror nodes scanned / tags repaired, and each
/// storm's queue (and its trace) dies with the storm — so without this the
/// 50-storm JSON dumps silently dropped the recovery-path activity that
/// happened between dumps.
struct RunTotals {
  std::uint64_t recoveries = 0;
  std::uint64_t nodes_scanned = 0;
  std::uint64_t tags_repaired = 0;
  std::uint64_t nodes_reclaimed = 0;
  std::uint64_t head_moved = 0;
  std::uint64_t tail_moved = 0;

  void absorb(const metrics::RecoveryTrace& rt) {
    ++recoveries;
    nodes_scanned += rt.nodes_scanned;
    tags_repaired += rt.tags_repaired;
    nodes_reclaimed += rt.nodes_reclaimed;
    head_moved += rt.head_moved ? 1 : 0;
    tail_moved += rt.tail_moved ? 1 : 0;
  }
};

bool run_one_storm(std::uint64_t seed, std::size_t threads,
                   RunTotals& totals) {
  pmem::ShadowPool pool(1 << 24);
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  queues::DssQueue<pmem::SimContext> q(ctx, threads, 1024);

  Xoshiro256 rng(seed);
  const auto crash_after = static_cast<std::int64_t>(rng.next_below(4000));
  auto outcomes = harness::run_crash_storm(q, threads, /*ops_per_thread=*/400,
                                           points, crash_after, seed);
  const auto survival =
      static_cast<pmem::ShadowPool::Survival>(rng.next_below(3));
  pool.crash({survival, rng.next_double(), rng.next()});
  q.recover();
  totals.absorb(q.last_recovery());

  std::multiset<queues::Value> enqueued, dequeued;
  for (std::size_t t = 0; t < threads; ++t) {
    const auto& o = outcomes[t];
    for (const queues::Value v : o.enqueued) enqueued.insert(v);
    for (const queues::Value v : o.dequeued) dequeued.insert(v);
    if (!o.crashed || o.pending == harness::ThreadOutcome::Pending::kNone) {
      continue;
    }
    const queues::Resolved r = q.resolve(t);
    if (o.pending == harness::ThreadOutcome::Pending::kEnqueue) {
      if (r.op == queues::Resolved::Op::kEnqueue &&
          r.arg == o.pending_arg && r.response.has_value()) {
        enqueued.insert(o.pending_arg);
      }
    } else if (r.op == queues::Resolved::Op::kDequeue &&
               r.response.has_value() && *r.response != queues::kEmpty &&
               std::find(o.dequeued.begin(), o.dequeued.end(),
                         *r.response) == o.dequeued.end()) {
      dequeued.insert(*r.response);
    }
  }
  std::multiset<queues::Value> remaining;
  {
    std::vector<queues::Value> rest;
    q.drain_to(rest);
    remaining.insert(rest.begin(), rest.end());
  }
  std::multiset<queues::Value> consumed_plus_left = dequeued;
  consumed_plus_left.insert(remaining.begin(), remaining.end());
  return enqueued == consumed_plus_left;
}

// One-line JSON dump of the global counter totals (stderr-free progress
// telemetry; parse with any JSON reader).
void dump_metrics(std::uint64_t storms, const RunTotals& totals) {
  const metrics::Snapshot s = metrics::snapshot();
  json::Writer w;
  w.begin_object();
  w.kv("storms", storms);
  w.kv("metrics_enabled", metrics::kEnabled);
  for (std::size_t c = 0; c < metrics::kCounterCount; ++c) {
    const auto counter = static_cast<metrics::Counter>(c);
    w.kv(metrics::name(counter), s[counter]);
  }
  // Monotone run-wide recovery totals (accumulated across storms; the
  // per-storm RecoveryTrace itself resets with every storm's queue).
  w.key("run_total");
  w.begin_object();
  w.kv("recoveries", totals.recoveries);
  w.kv("recovery_nodes_scanned", totals.nodes_scanned);
  w.kv("recovery_tags_repaired", totals.tags_repaired);
  w.kv("recovery_nodes_reclaimed", totals.nodes_reclaimed);
  w.kv("recovery_head_moved", totals.head_moved);
  w.kv("recovery_tail_moved", totals.tail_moved);
  w.end_object();
  w.end_object();
  std::printf("  metrics %s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

  std::printf("crash_torture: %.0f s, %zu threads, starting seed %llu\n",
              seconds, threads, static_cast<unsigned long long>(seed));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  std::uint64_t storms = 0;
  RunTotals totals;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!run_one_storm(seed, threads, totals)) {
      std::printf("VIOLATION at seed %llu — replay with:\n"
                  "  crash_torture 1 %zu %llu\n",
                  static_cast<unsigned long long>(seed), threads,
                  static_cast<unsigned long long>(seed));
      return 1;
    }
    ++seed;
    ++storms;
    if (storms % 50 == 0) {
      std::printf("  %llu storms, all exactly-once\n",
                  static_cast<unsigned long long>(storms));
      dump_metrics(storms, totals);
    }
  }
  std::printf("done: %llu crash-recovery storms, zero violations\n",
              static_cast<unsigned long long>(storms));
  dump_metrics(storms, totals);
  return 0;
}
