// traceview — forensic flight-recorder export.
//
// Reads the raw bytes of a heap file (or any file containing a recorder
// block), locates the flight recorder, and writes a Chrome-tracing /
// Perfetto JSON timeline.  Open the output at https://ui.perfetto.dev (or
// chrome://tracing) to see what every thread of the dead process was doing
// up to the SIGKILL — including the armed crash point and any recovery
// steps a later incarnation appended.
//
// The file is read as plain bytes, never opened as a PersistentHeap:
// opening a heap bumps its generation and rewrites header bookkeeping,
// and a post-mortem must not disturb the evidence.
//
//   traceview <heap-file> <out.perfetto.json> [--name <process-name>]

#include <cstdio>
#include <cstring>
#include <string>

#include "common/trace_export.hpp"

int main(int argc, char** argv) {
  std::string in, out;
  dssq::trace::ExportMeta meta;
  meta.process_name = "dssq (forensic)";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      meta.process_name = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: traceview <heap-file> <out.perfetto.json> "
          "[--name <process-name>]\n");
      return 0;
    } else if (in.empty()) {
      in = argv[i];
    } else if (out.empty()) {
      out = argv[i];
    } else {
      std::fprintf(stderr, "traceview: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (in.empty() || out.empty()) {
    std::fprintf(stderr,
                 "usage: traceview <heap-file> <out.perfetto.json> "
                 "[--name <process-name>]\n");
    return 2;
  }
  std::string err;
  if (!dssq::trace::export_file(in, out, meta, &err)) {
    std::fprintf(stderr, "traceview: %s\n", err.c_str());
    return 1;
  }
  std::printf("traceview: wrote %s\n", out.c_str());
  return 0;
}
