// Micro M5 — detectable hash-set operation costs.
//
// insert / remove / contains under the emulated-NVM backend, including
// the failing variants (duplicate insert, absent remove), whose cost is
// dominated by the single X persist that records the boolean outcome.

#include <benchmark/benchmark.h>

#include "pmem/context.hpp"
#include "sets/dss_hash_set.hpp"

namespace dssq::sets {
namespace {

using Ctx = pmem::EmulatedNvmContext;

void BM_SetInsertRemoveCycle(benchmark::State& state) {
  Ctx ctx(1 << 24);
  DssHashSet<Ctx> s(ctx, 1, 256, 1 << 16);
  Value v = 0;
  std::size_t since_compact = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.insert(0, v));
    benchmark::DoNotOptimize(s.remove(0, v));
    v = (v + 1) & 0xffff;
    if (++since_compact == (1u << 14)) {
      state.PauseTiming();
      s.compact();  // removed nodes only return at quiescent compaction
      since_compact = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SetInsertRemoveCycle);

void BM_SetDuplicateInsert(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssHashSet<Ctx> s(ctx, 1, 64, 1024);
  s.insert(0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.insert(0, 7));  // always false
  }
}
BENCHMARK(BM_SetDuplicateInsert);

void BM_SetAbsentRemove(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssHashSet<Ctx> s(ctx, 1, 64, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.remove(0, 12345));  // always false
  }
}
BENCHMARK(BM_SetAbsentRemove);

void BM_SetContains(benchmark::State& state) {
  Ctx ctx(1 << 23);
  DssHashSet<Ctx> s(ctx, 1, 256, 4096);
  for (Value v = 0; v < 1024; ++v) s.insert(0, v);
  Value v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.contains(0, v));
    v = (v + 1) & 1023;
  }
}
BENCHMARK(BM_SetContains);

void BM_SetResolve(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssHashSet<Ctx> s(ctx, 1, 64, 1024);
  s.prep_insert(0, 5);
  s.exec_insert(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.resolve(0));
  }
}
BENCHMARK(BM_SetResolve);

}  // namespace
}  // namespace dssq::sets
