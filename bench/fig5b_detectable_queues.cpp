// Figure 5b — "Different detectable queue implementations".
//
// Same workload as Figure 5a, comparing four detectable queues:
//   * DSS queue (detectable)          — the paper's algorithm,
//   * Log queue                       — Friedman et al.'s per-thread logs,
//   * Fast CASWithEffect queue        — PMwCAS with private-word fast path,
//   * General CASWithEffect queue     — plain PMwCAS for everything.
//
// Expected shape (paper): DSS > Log > Fast CASWE > General CASWE;
// DSS beats Log by up to ≈1.7×; Fast beats General by up to ≈1.5×.
//
// Also writes BENCH_fig5b.json (same schema as fig5a): the counter
// attribution explains the ordering — the CASWE queues pay descriptor
// flush traffic per operation that the DSS queue's hand-tuned protocol
// avoids, and the Fast variant's private-word optimization shows up as
// fewer flushes than General.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/adapters.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "pmem/context.hpp"
#include "pmwcas/caswe_queue.hpp"
#include "queues/dss_queue.hpp"
#include "queues/log_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using bench::kNodesPerThread;
using Ctx = pmem::EmulatedNvmContext;

harness::WorkloadResult run_dss(std::size_t threads) {
  Ctx ctx(kArenaBytes);
  queues::DssQueue<Ctx> q(ctx, threads, kNodesPerThread);
  harness::DetectableAdapter<decltype(q)> adapter{q};
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads));
}

harness::WorkloadResult run_log(std::size_t threads) {
  Ctx ctx(kArenaBytes);
  queues::LogQueue<Ctx> q(ctx, threads, kNodesPerThread);
  harness::DirectAdapter<decltype(q)> adapter{q};  // always detectable
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads));
}

template <bool Fast>
harness::WorkloadResult run_caswe(std::size_t threads) {
  Ctx ctx(kArenaBytes);
  pmwcas::CasWithEffectQueue<Ctx, Fast> q(ctx, threads, kNodesPerThread);
  harness::DirectAdapter<decltype(q)> adapter{q};  // enqueue = prep+exec
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads));
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  std::printf(
      "Figure 5b: scalability — detectable queue implementations\n"
      "workload: 16 seed nodes, alternating enqueue/dequeue pairs\n"
      "(Mops/s; paper shape: DSS > Log > Fast CASWE > General CASWE;\n"
      " DSS/Log <= ~1.7x, Fast/General <= ~1.5x)\n\n");

  // Optional flight-recorder export (DSSQ_TRACE_DIR): the last cell's
  // events per worker ring, viewable in ui.perfetto.dev.
  bench::TraceSession trace_session("fig5b");

  bench::Series dss_s{"dss", {}};
  bench::Series log_s{"log", {}};
  bench::Series fast_s{"fast_caswe", {}};
  bench::Series gen_s{"general_caswe", {}};

  harness::Table table({"threads", "dss", "log", "fast_caswe",
                        "general_caswe", "dss/log", "fast/general"});
  for (const std::size_t threads : bench::thread_points()) {
    dss_s.points.push_back(
        bench::measure_point(threads, [&] { return run_dss(threads); }));
    log_s.points.push_back(
        bench::measure_point(threads, [&] { return run_log(threads); }));
    fast_s.points.push_back(bench::measure_point(
        threads, [&] { return run_caswe<true>(threads); }));
    gen_s.points.push_back(bench::measure_point(
        threads, [&] { return run_caswe<false>(threads); }));
    const double dss = dss_s.points.back().result.mean_mops;
    const double log = log_s.points.back().result.mean_mops;
    const double fast = fast_s.points.back().result.mean_mops;
    const double gen = gen_s.points.back().result.mean_mops;
    table.add_row({std::to_string(threads), harness::fmt(dss),
                   harness::fmt(log), harness::fmt(fast), harness::fmt(gen),
                   harness::fmt(log > 0 ? dss / log : 0, 2),
                   harness::fmt(gen > 0 ? fast / gen : 0, 2)});
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());

  const std::string path =
      bench::write_report("fig5b", {dss_s, log_s, fast_s, gen_s});
  if (!path.empty()) std::printf("\nJSON report: %s\n", path.c_str());
  return 0;
}
