// Micro M3 — per-operation cost of the DSS queue's interface.
//
// Isolates the cost the paper attributes to detectability ("primarily due
// to the cost of the memory operations at lines 3–4, 13–14, 32–33 and
// 47–48"): detectable vs non-detectable enqueue/dequeue pairs, the split
// between prep and exec, and the (persist-free) resolve.

#include <benchmark/benchmark.h>

#include "pmem/context.hpp"
#include "queues/dss_queue.hpp"
#include "queues/dss_stack.hpp"
#include "queues/durable_queue.hpp"
#include "queues/log_queue.hpp"
#include "queues/ms_queue.hpp"

namespace dssq::queues {
namespace {

using Ctx = pmem::EmulatedNvmContext;
constexpr std::size_t kPool = 4096;

void BM_MsQueuePair(benchmark::State& state) {
  Ctx ctx(1 << 22);
  MsQueue<Ctx> q(ctx, 1, kPool);
  q.enqueue(0, 0);
  Value v = 1;
  for (auto _ : state) {
    q.enqueue(0, v++);
    benchmark::DoNotOptimize(q.dequeue(0));
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MsQueuePair);

void BM_DurableQueuePair(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DurableQueue<Ctx> q(ctx, 1, kPool);
  q.enqueue(0, 0);
  Value v = 1;
  for (auto _ : state) {
    q.enqueue(0, v++);
    benchmark::DoNotOptimize(q.dequeue(0));
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DurableQueuePair);

void BM_DssNonDetectablePair(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssQueue<Ctx> q(ctx, 1, kPool);
  q.enqueue(0, 0);
  Value v = 1;
  for (auto _ : state) {
    q.enqueue(0, v++);
    benchmark::DoNotOptimize(q.dequeue(0));
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DssNonDetectablePair);

void BM_DssDetectablePair(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssQueue<Ctx> q(ctx, 1, kPool);
  q.enqueue(0, 0);
  Value v = 1;
  for (auto _ : state) {
    q.prep_enqueue(0, v++);
    q.exec_enqueue(0);
    q.prep_dequeue(0);
    benchmark::DoNotOptimize(q.exec_dequeue(0));
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DssDetectablePair);

void BM_LogQueuePair(benchmark::State& state) {
  Ctx ctx(1 << 23);
  LogQueue<Ctx> q(ctx, 1, kPool);
  q.enqueue(0, 0);
  Value v = 1;
  for (auto _ : state) {
    q.enqueue(0, v++);
    benchmark::DoNotOptimize(q.dequeue(0));
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogQueuePair);

void BM_DssStackNonDetectablePair(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssStack<Ctx> s(ctx, 1, kPool);
  s.push(0, 0);
  Value v = 1;
  for (auto _ : state) {
    s.push(0, v++);
    benchmark::DoNotOptimize(s.pop(0));
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DssStackNonDetectablePair);

void BM_DssStackDetectablePair(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssStack<Ctx> s(ctx, 1, kPool);
  s.push(0, 0);
  Value v = 1;
  for (auto _ : state) {
    s.prep_push(0, v++);
    s.exec_push(0);
    s.prep_pop(0);
    benchmark::DoNotOptimize(s.exec_pop(0));
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DssStackDetectablePair);

void BM_PrepEnqueueOnly(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssQueue<Ctx> q(ctx, 1, kPool);
  for (auto _ : state) {
    q.prep_enqueue(0, 1);  // each prep reclaims the previous failed prep
  }
}
BENCHMARK(BM_PrepEnqueueOnly);

void BM_PrepDequeueOnly(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DssQueue<Ctx> q(ctx, 1, kPool);
  for (auto _ : state) {
    q.prep_dequeue(0);
  }
}
BENCHMARK(BM_PrepDequeueOnly);

void BM_Resolve(benchmark::State& state) {
  // resolve is a read-only detection pass: no flushes, no fences.
  Ctx ctx(1 << 22);
  DssQueue<Ctx> q(ctx, 1, kPool);
  q.prep_enqueue(0, 7);
  q.exec_enqueue(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.resolve(0));
  }
}
BENCHMARK(BM_Resolve);

}  // namespace
}  // namespace dssq::queues
