// Ablation A5 — per-operation latency distribution.
//
// The paper reports throughput only; this ablation adds the latency view:
// p50 / p95 / p99 of single enqueue+dequeue pairs for each queue, under
// the emulated-NVM backend.  The distribution explains the throughput
// ordering: the DSS detectable path adds a near-constant number of
// persists (tight distribution, shifted median); PMwCAS-based queues add
// descriptor traffic with helping-induced tail effects.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "harness/adapters.hpp"
#include "harness/table.hpp"
#include "pmem/context.hpp"
#include "pmwcas/caswe_queue.hpp"
#include "queues/dss_queue.hpp"
#include "queues/log_queue.hpp"
#include "queues/ms_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using Ctx = pmem::EmulatedNvmContext;

template <class Adapter>
Stats measure_pairs(Adapter adapter, std::size_t pairs) {
  using Clock = std::chrono::steady_clock;
  Stats s;
  queues::Value v = 1;
  // Warmup.
  for (int i = 0; i < 512; ++i) {
    adapter.enqueue(0, v++);
    (void)adapter.dequeue(0);
  }
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto t0 = Clock::now();
    adapter.enqueue(0, v++);
    (void)adapter.dequeue(0);
    const auto t1 = Clock::now();
    s.add(std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return s;
}

void add_row(harness::Table& table, const char* name, const Stats& s) {
  table.add_row({name, harness::fmt(s.percentile(50), 0),
                 harness::fmt(s.percentile(95), 0),
                 harness::fmt(s.percentile(99), 0),
                 harness::fmt(s.mean(), 0)});
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  const std::size_t pairs = bench::env_u64("DSSQ_LATENCY_PAIRS", 20'000);
  std::printf(
      "Ablation A5: single-thread enqueue+dequeue pair latency (ns)\n"
      "(%zu measured pairs per queue, emulated-NVM backend)\n\n",
      pairs);

  harness::Table table({"queue", "p50_ns", "p95_ns", "p99_ns", "mean_ns"});
  {
    Ctx ctx(kArenaBytes);
    queues::MsQueue<Ctx> q(ctx, 1, 4096);
    add_row(table, "ms (volatile path)",
            measure_pairs(harness::DirectAdapter<decltype(q)>{q}, pairs));
  }
  {
    Ctx ctx(kArenaBytes);
    queues::DssQueue<Ctx> q(ctx, 1, 4096);
    add_row(table, "dss non-detectable",
            measure_pairs(harness::DirectAdapter<decltype(q)>{q}, pairs));
  }
  {
    Ctx ctx(kArenaBytes);
    queues::DssQueue<Ctx> q(ctx, 1, 4096);
    add_row(table, "dss detectable",
            measure_pairs(harness::DetectableAdapter<decltype(q)>{q},
                          pairs));
  }
  {
    Ctx ctx(kArenaBytes);
    queues::LogQueue<Ctx> q(ctx, 1, 4096);
    add_row(table, "log",
            measure_pairs(harness::DirectAdapter<decltype(q)>{q}, pairs));
  }
  {
    Ctx ctx(kArenaBytes);
    pmwcas::FastCasWithEffectQueue<Ctx> q(ctx, 1, 4096);
    add_row(table, "fast caswe",
            measure_pairs(harness::DirectAdapter<decltype(q)>{q}, pairs));
  }
  {
    Ctx ctx(kArenaBytes);
    pmwcas::GeneralCasWithEffectQueue<Ctx> q(ctx, 1, 4096);
    add_row(table, "general caswe",
            measure_pairs(harness::DirectAdapter<decltype(q)>{q}, pairs));
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
