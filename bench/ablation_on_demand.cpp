// Ablation A2 — detectability on demand.
//
// The DSS's distinguishing flexibility (contribution 3 in Section 1): an
// application REQUESTS detectability per operation by choosing the
// prep/exec path, and pays nothing for operations it runs plainly.  NRL,
// NRL+ and the log queue make every operation detectable.  This ablation
// sweeps the fraction of operations run detectably and shows throughput
// degrading linearly between the "DSS non-detectable" and "DSS
// detectable" endpoints of Figure 5a — the knob the other designs lack.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "harness/table.hpp"
#include "pmem/context.hpp"
#include "queues/dss_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using bench::kNodesPerThread;
using Ctx = pmem::EmulatedNvmContext;

double run_mixed(std::size_t threads, double detectable_fraction) {
  Ctx ctx(kArenaBytes);
  queues::DssQueue<Ctx> q(ctx, threads, kNodesPerThread);
  for (int i = 0; i < 16; ++i) q.enqueue(0, i);

  const auto cfg = bench::workload_config(threads);
  double total_mops = 0;
  for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
    std::atomic<int> phase{0};
    std::atomic<std::uint64_t> total_ops{0};
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(hash_combine(rep * 131, t));
        queues::Value v = static_cast<queues::Value>(t) * 1'000'000;
        std::uint64_t ops = 0;
        int seen = 0;
        while (seen < 2) {
          if (rng.next_bool(detectable_fraction)) {
            q.prep_enqueue(t, v++);
            q.exec_enqueue(t);
            q.prep_dequeue(t);
            (void)q.exec_dequeue(t);
          } else {
            q.enqueue(t, v++);
            (void)q.dequeue(t);
          }
          const int p = phase.load(std::memory_order_relaxed);
          if (p != seen) {
            if (p == 1) ops = 0;
            seen = p;
          }
          ops += 2;
        }
        total_ops.fetch_add(ops, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(cfg.warmup);
    phase.store(1);
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(cfg.duration);
    phase.store(2);
    for (auto& w : workers) w.join();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    total_mops += static_cast<double>(total_ops.load()) / secs / 1e6;
  }
  return total_mops / static_cast<double>(cfg.repetitions);
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  std::printf(
      "Ablation A2: detectability on demand (DSS queue)\n"
      "(Mops/s vs fraction of operations requested detectable;\n"
      " endpoints correspond to Figure 5a's two DSS curves)\n\n");

  harness::Table table({"threads", "0%", "25%", "50%", "75%", "100%",
                        "0%/100%"});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<double> cols;
    for (const double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      cols.push_back(run_mixed(threads, f));
    }
    table.add_row({std::to_string(threads), harness::fmt(cols[0]),
                   harness::fmt(cols[1]), harness::fmt(cols[2]),
                   harness::fmt(cols[3]), harness::fmt(cols[4]),
                   harness::fmt(cols[4] > 0 ? cols[0] / cols[4] : 0, 2)});
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
