// Micro M1 — persistence-primitive cost per backend.
//
// Calibrates the substrate itself: the cost of flush / fence / persist for
// the no-op, emulated-NVM, and real-CLWB backends, and of the shadow-pool
// simulator (so test runtimes are explainable).  The emulated backend's
// persist cost should track DSSQ_FLUSH_NS + DSSQ_FENCE_NS.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "pmem/backend.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/persistent_heap.hpp"
#include "pmem/shadow_pool.hpp"

namespace dssq::pmem {
namespace {

alignas(kCacheLineSize) char g_buffer[kCacheLineSize * 16];

template <class Backend>
void BM_PersistOneLine(benchmark::State& state) {
  Backend backend;
  for (auto _ : state) {
    g_buffer[0]++;
    backend.persist(g_buffer, 8);
  }
  benchmark::DoNotOptimize(g_buffer[0]);
}
BENCHMARK_TEMPLATE(BM_PersistOneLine, NullBackend);
BENCHMARK_TEMPLATE(BM_PersistOneLine, EmulatedNvmBackend);
BENCHMARK_TEMPLATE(BM_PersistOneLine, ClwbBackend);

template <class Backend>
void BM_PersistMultiLine(benchmark::State& state) {
  Backend backend;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    g_buffer[0]++;
    backend.persist(g_buffer, bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK_TEMPLATE(BM_PersistMultiLine, EmulatedNvmBackend)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_PersistMultiLine, ClwbBackend)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);

// File-backed heap persist cost (msync or MAP_SYNC tier, whichever the
// filesystem grants).  Heap file goes to DSSQ_HEAP_DIR (default /tmp) so a
// tmpfs/DAX mount can be substituted; the file is unlinked when done.
std::string bench_heap_path() {
  const char* dir = std::getenv("DSSQ_HEAP_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  if (path.back() != '/') path.push_back('/');
  path += "dssq-bench-" + std::to_string(::getpid()) + ".heap";
  return path;
}

void BM_MmapPersistOneLine(benchmark::State& state) {
  const std::string path = bench_heap_path();
  ::unlink(path.c_str());
  PersistentHeap::Options opt;
  opt.bytes = std::size_t{1} << 20;
  PersistentHeap heap(path, PersistentHeap::OpenMode::kCreate, opt);
  auto* p = static_cast<char*>(heap.raw_alloc(kCacheLineSize, kCacheLineSize));
  for (auto _ : state) {
    (*p)++;
    heap.persist(p, 8);
  }
  state.SetLabel(heap.backend().mode_name());
  ::unlink(path.c_str());
}
BENCHMARK(BM_MmapPersistOneLine);

void BM_MmapPersistMultiLine(benchmark::State& state) {
  const std::string path = bench_heap_path();
  ::unlink(path.c_str());
  PersistentHeap::Options opt;
  opt.bytes = std::size_t{1} << 20;
  PersistentHeap heap(path, PersistentHeap::OpenMode::kCreate, opt);
  const auto bytes = static_cast<std::size_t>(state.range(0));
  auto* p = static_cast<char*>(heap.raw_alloc(bytes, kCacheLineSize));
  for (auto _ : state) {
    (*p)++;
    heap.persist(p, bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(heap.backend().mode_name());
  ::unlink(path.c_str());
}
BENCHMARK(BM_MmapPersistMultiLine)->Arg(64)->Arg(256)->Arg(1024);

void BM_FlushOnly(benchmark::State& state) {
  EmulatedNvmBackend backend;
  for (auto _ : state) backend.flush(g_buffer, 8);
}
BENCHMARK(BM_FlushOnly);

void BM_FenceOnly(benchmark::State& state) {
  EmulatedNvmBackend backend;
  for (auto _ : state) backend.fence();
}
BENCHMARK(BM_FenceOnly);

void BM_ShadowPoolPersist(benchmark::State& state) {
  ShadowPool pool(1 << 16);
  auto* p = static_cast<std::uint64_t*>(pool.alloc(64, 64));
  for (auto _ : state) {
    (*p)++;
    pool.persist(p, 8);
  }
}
BENCHMARK(BM_ShadowPoolPersist);

void BM_ShadowPoolCrash(benchmark::State& state) {
  // Cost of a full simulated crash over a pool with `range` dirty lines.
  const auto lines = static_cast<std::size_t>(state.range(0));
  ShadowPool pool(lines * kCacheLineSize * 2);
  std::vector<std::uint64_t*> ptrs;
  for (std::size_t i = 0; i < lines; ++i) {
    ptrs.push_back(static_cast<std::uint64_t*>(pool.alloc(64, 64)));
  }
  std::uint64_t v = 1;
  for (auto _ : state) {
    for (auto* p : ptrs) *p = v;
    ++v;
    pool.crash();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines));
}
BENCHMARK(BM_ShadowPoolCrash)->Arg(64)->Arg(1024);

void BM_CrashPointDisarmed(benchmark::State& state) {
  CrashPoints points;
  for (auto _ : state) points.point("bench");
  benchmark::DoNotOptimize(points.hits());
}
BENCHMARK(BM_CrashPointDisarmed);

}  // namespace
}  // namespace dssq::pmem
