// Ablation A4 — the price of the memory-safety hardening rules.
//
// DESIGN.md calls out two additions this implementation makes over the
// paper's pseudocode so that node reuse cannot corrupt recovery or
// resolve:
//   * persist-before-reuse — one head persist per EBR reclamation batch;
//   * X-pinning            — an O(n) scan of the X array per reclaimed
//                            node, deferring nodes a detectability record
//                            still references.
// This bench quantifies their combined throughput cost by comparing the
// hardened queue with a variant that disables both (BENCH-ONLY: that
// variant is not crash-safe).  Expectation: the overhead is small — a
// few percent at most — because both costs amortize over reclamation
// batches, which is the justification for shipping the hardening on by
// default.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/adapters.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "pmem/context.hpp"
#include "queues/dss_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using bench::kNodesPerThread;
using Ctx = pmem::EmulatedNvmContext;

template <class Policy>
double run(std::size_t threads, bool detectable) {
  Ctx ctx(kArenaBytes);
  queues::DssQueue<Ctx, Policy> q(ctx, threads, kNodesPerThread);
  const auto cfg = bench::workload_config(threads);
  if (detectable) {
    harness::DetectableAdapter<decltype(q)> a{q};
    harness::seed_queue(a, 16);
    return harness::run_throughput(a, cfg).mean_mops;
  }
  harness::DirectAdapter<decltype(q)> a{q};
  harness::seed_queue(a, 16);
  return harness::run_throughput(a, cfg).mean_mops;
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  std::printf(
      "Ablation A4: cost of the memory-safety hardening\n"
      "(DSS queue with persist-before-reuse + X-pinning vs both disabled;\n"
      " expectation: small overhead, amortized per reclamation batch)\n\n");

  harness::Table table({"threads", "mode", "hardened", "unsafe_reuse",
                        "overhead"});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    for (const bool det : {false, true}) {
      const double hard = run<queues::DssHardenedPolicy>(threads, det);
      const double fast = run<queues::DssUnsafeReusePolicy>(threads, det);
      table.add_row({std::to_string(threads),
                     det ? "detectable" : "plain", harness::fmt(hard),
                     harness::fmt(fast),
                     harness::fmt(hard > 0 ? (fast / hard - 1.0) * 100 : 0,
                                  1) +
                         "%"});
    }
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
