// Micro M2 — PMwCAS operation cost.
//
// Measures a single uncontended PMwCAS as a function of word count, and
// the saving of the private-word fast path (the Fast-vs-General
// CASWithEffect difference of Figure 5b, isolated from queue logic):
// a private word skips the RDCSS install and its flush, so each word
// converted from shared to private removes a constant from the cost.

#include <benchmark/benchmark.h>

#include "ebr/ebr.hpp"
#include "pmem/context.hpp"
#include "pmwcas/pmwcas.hpp"

namespace dssq::pmwcas {
namespace {

using Ctx = pmem::EmulatedNvmContext;

struct Bed {
  Ctx ctx{1 << 22, pmem::EmulatedNvmBackend(pmem::EmulationParams{0, 0})};
  Engine<Ctx> engine{ctx, 1, 256};
  std::atomic<std::uint64_t>* words;

  Bed() {
    words = pmem::alloc_array<std::atomic<std::uint64_t>>(ctx, 8);
  }
};

void BM_MwcasByWordCount(benchmark::State& state) {
  Bed bed;
  const auto count = static_cast<std::size_t>(state.range(0));
  std::uint64_t v = 0;
  for (auto _ : state) {
    ebr::EpochGuard guard(bed.engine.ebr(), 0);
    Descriptor* d = bed.engine.allocate(0);
    for (std::size_t i = 0; i < count; ++i) {
      bed.engine.add_word(d, &bed.words[i], v, v + 1);
    }
    const bool ok = bed.engine.mwcas(0, d);
    benchmark::DoNotOptimize(ok);
    ++v;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MwcasByWordCount)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_MwcasPrivateWords(benchmark::State& state) {
  // 3 words total, `range` of them private — the queue's exact shapes:
  // General enqueue = 3 shared; Fast enqueue = 2 shared + 1 private.
  Bed bed;
  const auto n_private = static_cast<std::size_t>(state.range(0));
  std::uint64_t v = 0;
  for (auto _ : state) {
    ebr::EpochGuard guard(bed.engine.ebr(), 0);
    Descriptor* d = bed.engine.allocate(0);
    for (std::size_t i = 0; i < 3; ++i) {
      bed.engine.add_word(d, &bed.words[i], v, v + 1,
                          /*is_private=*/i < n_private);
    }
    const bool ok = bed.engine.mwcas(0, d);
    benchmark::DoNotOptimize(ok);
    ++v;
  }
}
BENCHMARK(BM_MwcasPrivateWords)->Arg(0)->Arg(1)->Arg(2);

void BM_MwcasFailureCheap(benchmark::State& state) {
  // A failing PMwCAS (wrong expected on the first word) must cost far less
  // than a successful one: no installs persist, no phase-2 flushes.
  Bed bed;
  for (auto _ : state) {
    ebr::EpochGuard guard(bed.engine.ebr(), 0);
    Descriptor* d = bed.engine.allocate(0);
    bed.engine.add_word(d, &bed.words[0], ~std::uint64_t{1} >> 8, 1);
    const bool ok = bed.engine.mwcas(0, d);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MwcasFailureCheap);

void BM_PmwcasRead(benchmark::State& state) {
  Bed bed;
  ebr::EpochGuard guard(bed.engine.ebr(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.engine.read(&bed.words[0]));
  }
}
BENCHMARK(BM_PmwcasRead);

}  // namespace
}  // namespace dssq::pmwcas
