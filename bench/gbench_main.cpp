// Custom google-benchmark main for the micro benches: identical to
// benchmark_main, except that unless the caller passes --benchmark_out
// themselves, results are also written to BENCH_<name>.json (gbench's
// native JSON schema) in DSSQ_BENCH_JSON_DIR — so the micro benches emit
// machine-readable output through the same BENCH_*.json convention as the
// figure benches.  `name` comes from the per-target DSSQ_BENCH_NAME
// compile definition (bench/CMakeLists.txt).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#ifndef DSSQ_BENCH_NAME
#define DSSQ_BENCH_NAME "micro"
#endif

int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  if (!has_out) {
    std::string path;
    const char* dir = std::getenv("DSSQ_BENCH_JSON_DIR");
    if (dir != nullptr && *dir != '\0') {
      path = dir;
      if (path.back() != '/') path.push_back('/');
    }
    path += "BENCH_" DSSQ_BENCH_NAME ".json";
    out_flag = "--benchmark_out=" + path;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }

  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
