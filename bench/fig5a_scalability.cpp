// Figure 5a — "Different levels of detectability and persistence".
//
// Reproduces the paper's scalability experiment: the queue is seeded with
// 16 nodes; each thread runs alternating enqueue/dequeue pairs; mean
// throughput (Mops/s) is reported per thread count for
//   * MS queue                  (volatile: flushes removed),
//   * DSS queue non-detectable  (persistent, no X accesses),
//   * DSS queue detectable      (prep/exec on every operation).
//
// Expected shape (paper): MS > non-detectable > detectable, with the
// detectability gap largest at low thread counts (≈3× at 1–2 threads) and
// all three curves converging as contention on head/tail dominates.
// Absolute numbers differ (emulated NVM latency, container CPU); the
// ordering and the direction of convergence are the reproduction targets.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/adapters.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "pmem/context.hpp"
#include "queues/dss_queue.hpp"
#include "queues/ms_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using bench::kNodesPerThread;

double run_ms_queue(std::size_t threads) {
  pmem::VolatileContext ctx(kArenaBytes);
  queues::MsQueue<pmem::VolatileContext> q(ctx, threads, kNodesPerThread);
  harness::DirectAdapter<decltype(q)> adapter{q};
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads))
      .mean_mops;
}

double run_dss(std::size_t threads, bool detectable) {
  pmem::EmulatedNvmContext ctx(kArenaBytes);
  queues::DssQueue<pmem::EmulatedNvmContext> q(ctx, threads,
                                               kNodesPerThread);
  if (detectable) {
    harness::DetectableAdapter<decltype(q)> adapter{q};
    harness::seed_queue(adapter, 16);
    return harness::run_throughput(adapter, bench::workload_config(threads))
        .mean_mops;
  }
  harness::DirectAdapter<decltype(q)> adapter{q};
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads))
      .mean_mops;
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  std::printf(
      "Figure 5a: scalability — levels of detectability and persistence\n"
      "workload: 16 seed nodes, alternating enqueue/dequeue pairs\n"
      "(Mops/s; paper shape: MS > DSS non-detectable > DSS detectable,\n"
      " gap ≈3x at low threads, curves converge at high threads)\n\n");

  harness::Table table({"threads", "ms_queue", "dss_nondetectable",
                        "dss_detectable", "nd/det", "ms/nd"});
  for (const std::size_t threads : bench::thread_points()) {
    const double ms = run_ms_queue(threads);
    const double nd = run_dss(threads, /*detectable=*/false);
    const double det = run_dss(threads, /*detectable=*/true);
    table.add_row({std::to_string(threads), harness::fmt(ms),
                   harness::fmt(nd), harness::fmt(det),
                   harness::fmt(det > 0 ? nd / det : 0, 2),
                   harness::fmt(nd > 0 ? ms / nd : 0, 2)});
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
