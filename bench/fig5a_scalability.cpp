// Figure 5a — "Different levels of detectability and persistence".
//
// Reproduces the paper's scalability experiment: the queue is seeded with
// 16 nodes; each thread runs alternating enqueue/dequeue pairs; mean
// throughput (Mops/s) is reported per thread count for
//   * MS queue                  (volatile: flushes removed),
//   * DSS queue non-detectable  (persistent, no X accesses),
//   * DSS queue detectable      (prep/exec on every operation).
//
// Expected shape (paper): MS > non-detectable > detectable, with the
// detectability gap largest at low thread counts (≈3× at 1–2 threads) and
// all three curves converging as contention on head/tail dominates.
// Absolute numbers differ (emulated NVM latency, container CPU); the
// ordering and the direction of convergence are the reproduction targets.
//
// Besides the table + CSV, writes BENCH_fig5a.json with per-point
// throughput statistics and counter attribution; the detectable series
// must show strictly more flushes per operation than the non-detectable
// one (the X[p] persists of Figure 3) — that invariant is what the JSON
// lets CI assert.

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.hpp"
#include "common/spin.hpp"
#include "harness/adapters.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "pmem/context.hpp"
#include "pmem/dss_uring.hpp"
#include "pmem/persistent_heap.hpp"
#include "queues/dss_queue.hpp"
#include "queues/ms_queue.hpp"
#include "queues/sharded_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using bench::kNodesPerThread;

harness::WorkloadResult run_ms_queue(std::size_t threads) {
  pmem::VolatileContext ctx(kArenaBytes);
  queues::MsQueue<pmem::VolatileContext> q(ctx, threads, kNodesPerThread);
  harness::DirectAdapter<decltype(q)> adapter{q};
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads));
}

harness::WorkloadResult run_dss(std::size_t threads, bool detectable,
                                bool force_combining_off = false) {
  // The main series run under the process-wide knob (env
  // DSSQ_FENCE_COMBINING), so an all-OFF sweep for bench_diff.py stays
  // possible; only the nocomb series forces the knob, scoped to the cell.
  const bool saved = pmem::fence_combining_enabled();
  if (force_combining_off) pmem::set_fence_combining_enabled(false);
  pmem::EmulatedNvmContext ctx(kArenaBytes);
  queues::DssQueue<pmem::EmulatedNvmContext> q(ctx, threads,
                                               kNodesPerThread);
  harness::WorkloadResult result;
  if (detectable) {
    harness::DetectableAdapter<decltype(q)> adapter{q};
    harness::seed_queue(adapter, 16);
    result = harness::run_throughput(adapter, bench::workload_config(threads));
  } else {
    harness::DirectAdapter<decltype(q)> adapter{q};
    harness::seed_queue(adapter, 16);
    result = harness::run_throughput(adapter, bench::workload_config(threads));
  }
  pmem::set_fence_combining_enabled(saved);
  return result;
}

// The detectable workload against the N-lane sharded queue (operation
// combining per lane, global-ticket FIFO).  The lane count comes from
// DSSQ_LANES (default min(hw threads, 8)), so CI sweeps lane counts by
// re-running the binary: DSSQ_LANES=1 prices the combiner alone,
// DSSQ_LANES=8 adds the contention split.
harness::WorkloadResult run_dss_sharded(std::size_t threads) {
  pmem::EmulatedNvmContext ctx(kArenaBytes);
  queues::ShardedDssQueue<pmem::EmulatedNvmContext> q(ctx, threads,
                                                      kNodesPerThread);
  harness::DetectableAdapter<decltype(q)> adapter{q};
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads));
}

// Same detectable workload against the file-backed mmap heap instead of
// the emulated-NVM DRAM arena: persists become msync/fdatasync (or CLWB
// on a MAP_SYNC mount), so the series prices real write-back durability.
// Heap file goes to DSSQ_HEAP_DIR (default /tmp; point it at tmpfs or a
// DAX mount to change the tier) and is recreated per cell.
std::string heap_path() {
  const char* dir = std::getenv("DSSQ_HEAP_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  if (path.back() != '/') path.push_back('/');
  path += "dssq-fig5a-" + std::to_string(::getpid()) + ".heap";
  return path;
}

harness::WorkloadResult run_dss_mmap(std::size_t threads) {
  const std::string path = heap_path();
  ::unlink(path.c_str());
  pmem::PersistentHeap::Options opt;
  opt.bytes = kArenaBytes;
  pmem::PersistentHeap heap(path, pmem::PersistentHeap::OpenMode::kCreate,
                            opt);
  pmem::MmapContext ctx(heap);
  harness::WorkloadResult result;
  {
    queues::DssQueue<pmem::MmapContext> q(ctx, threads, kNodesPerThread);
    harness::DetectableAdapter<decltype(q)> adapter{q};
    harness::seed_queue(adapter, 16);
    result = harness::run_throughput(adapter, bench::workload_config(threads));
  }
  ::unlink(path.c_str());
  return result;
}

// The async submission-ring front end over the same mmap heap as
// dss_detectable_mmap: each workload thread owns one bounded ring
// (capacity 16) and keeps up to 8 operations in flight.  Who drains is
// DSSQ_RING_EXECUTORS:
//   0 (default) — clients drain their own ring after filling the window
//     (the Handle Drain::kSelf mode crashrun clients use): the win
//     measured is batching, one journal fence per drained batch instead
//     of one fence per op.
//   N — a pool of N executor threads owns the rings (executor j drains
//     slots i with i % N == j) and clients only submit/poll.  This is
//     the true async pipeline, but every op then needs a cross-thread
//     handoff: on a single-CPU cgroup each handoff costs a scheduler
//     quantum, so the pool only makes sense with real parallelism —
//     hence opt-in.
// Throughput counts polled completions, so the series is directly
// comparable with the synchronous ones (each completion is one enqueue
// or dequeue).  The three pipeline stages are measured from the
// CompEntry timestamps —
//   submit: submit→drain   (time queued in the submission ring)
//   exec:   drain→exec     (execution inside the batch)
//   complete: exec→poll    (completion delivery back to the client)
// — into explicit histograms reported as the latency-only series
// dss_ring/{submit,exec,complete}.  trace::now_ns() is 0 in trace-off
// builds, so the stages degrade to zeros there (same caveat as the
// per-op latency_ns block every series already carries).
/// CPU time consumed by the calling thread (ns).  The submission-path rate
/// divides staged ops by time spent staging; wall clocks would absorb
/// preemptions (many client threads share few CPUs), charging scheduler
/// quanta to a code path that never ran.
std::uint64_t thread_cpu_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000u +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

struct RingBenchResult {
  harness::WorkloadResult result;
  // Submission-path throughput: operations staged+published per second of
  // time spent inside the submission path alone (the client's cost per op
  // — what the async front end decouples from execution).  This is the
  // acceptance metric "submission throughput vs direct enq()": a direct
  // enqueue charges the caller the full persist protocol; a ring client
  // pays one entry flush plus 1/window of a fence + tail persist.
  harness::WorkloadResult submit_path;
  LatencyHistogram stage_submit;
  LatencyHistogram stage_exec;
  LatencyHistogram stage_complete;
};

RingBenchResult run_dss_ring(std::size_t threads) {
  constexpr std::size_t kRingCapacity = 16;
  constexpr std::uint64_t kWindow = 8;
  const std::size_t executors =
      static_cast<std::size_t>(bench::env_u64("DSSQ_RING_EXECUTORS", 0));
  const std::string path = heap_path();
  ::unlink(path.c_str());
  pmem::PersistentHeap::Options opt;
  opt.bytes = kArenaBytes;
  RingBenchResult out;
  {
    pmem::PersistentHeap heap(path, pmem::PersistentHeap::OpenMode::kCreate,
                              opt);
    pmem::MmapContext ctx(heap);
    queues::DssQueue<pmem::MmapContext> q(ctx, threads, kNodesPerThread);
    void* ubase = heap.raw_alloc(
        pmem::UringTable::bytes_for(threads, kRingCapacity), kCacheLineSize);
    pmem::UringTable::format(ubase, threads, kRingCapacity, heap.backend());
    pmem::UringTable rings(static_cast<pmem::UringTable::Header*>(ubase));
    for (std::size_t i = 0; i < 16; ++i) {
      q.enqueue(0, static_cast<queues::Value>(i) + 1);
    }

    const harness::WorkloadConfig cfg = bench::workload_config(threads);
    std::mutex lat_mu;
    for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
      // Phase control: 0 = warmup, 1 = measure, 2 = stop (as
      // run_throughput); executors outlive the clients so every client
      // can retire its in-flight window before exiting.
      std::atomic<int> phase{0};
      std::atomic<bool> exec_stop{false};
      std::atomic<std::uint64_t> total_ops{0};
      std::atomic<std::uint64_t> submit_ops{0};
      std::atomic<std::uint64_t> submit_ns{0};

      auto client = [&](std::size_t tid) {
        trace::ThreadRing ring(tid);
        LatencyHistogram sub_h, exe_h, cmp_h;
        queues::Value v = static_cast<queues::Value>(tid) * 1'000'000;
        std::uint64_t cursor = rings.comp_tail(tid);
        std::uint64_t submitted = rings.sub_tail(tid);
        std::uint64_t completed = cursor;
        bool next_enq = true;
        std::uint64_t ops = 0;
        std::uint64_t my_submit_ops = 0;
        std::uint64_t my_submit_ns = 0;
        int seen = 0;
        while (seen < 2) {
          // Stage a window of entries, then one publish pays the fence +
          // tail persist for the whole batch.
          const std::uint64_t t0 = thread_cpu_ns();
          std::uint64_t staged = 0;
          while (submitted + staged - completed < kWindow) {
            const bool ok =
                next_enq
                    ? rings.stage(ctx, tid, staged,
                                  pmem::UringTable::kOpEnqueue, v++)
                    : rings.stage(ctx, tid, staged,
                                  pmem::UringTable::kOpDequeue, 0);
            if (!ok) break;  // ring full: wait for the drainer
            next_enq = !next_enq;
            ++staged;
          }
          rings.publish_staged(ctx, tid, staged);
          submitted += staged;
          if (staged > 0) {
            my_submit_ops += staged;
            my_submit_ns += thread_cpu_ns() - t0;
          }
          // Self-drain mode: this client is its ring's only drainer, so
          // the whole published window executes under one batch fence.
          if (executors == 0) (void)rings.drain(ctx, q, tid);
          bool progressed = false;
          while (auto c = rings.poll(tid, cursor)) {
            ++cursor;
            ++completed;
            ++ops;
            progressed = true;
            const std::uint64_t now = trace::now_ns();
            if (c->t_drain >= c->t_submit)
              sub_h.add(c->t_drain - c->t_submit);
            if (c->t_exec >= c->t_drain) exe_h.add(c->t_exec - c->t_drain);
            if (now >= c->t_exec) cmp_h.add(now - c->t_exec);
            if (now >= c->t_submit) hist::record(now - c->t_submit);
          }
          if (!progressed) cpu_pause();
          const int p = phase.load(std::memory_order_relaxed);
          if (p != seen) {
            if (p == 1) ops = 0;  // measurement starts now
            seen = p;
          }
        }
        // Retire the in-flight window so the next rep starts with empty
        // rings (and the heap closes quiescent).
        while (completed < submitted) {
          if (executors == 0) (void)rings.drain(ctx, q, tid);
          if (auto c = rings.poll(tid, cursor)) {
            ++cursor;
            ++completed;
          } else {
            cpu_pause();
          }
        }
        total_ops.fetch_add(ops, std::memory_order_relaxed);
        submit_ops.fetch_add(my_submit_ops, std::memory_order_relaxed);
        submit_ns.fetch_add(my_submit_ns, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(lat_mu);
        out.stage_submit.merge(sub_h);
        out.stage_exec.merge(exe_h);
        out.stage_complete.merge(cmp_h);
      };

      // Pool mode: executor j owns slots i with i % executors == j —
      // exactly one drainer per ring, batches amortise the journal fence.
      auto executor = [&](std::size_t j) {
        while (!exec_stop.load(std::memory_order_relaxed)) {
          std::size_t drained = 0;
          for (std::size_t i = j; i < threads; i += executors) {
            drained += rings.drain(ctx, q, i, /*budget=*/128);
          }
          if (drained == 0) cpu_pause();
        }
      };

      std::vector<std::thread> execs;
      execs.reserve(executors);
      for (std::size_t j = 0; j < executors; ++j) {
        execs.emplace_back(executor, j);
      }
      std::vector<std::thread> clients;
      clients.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) {
        clients.emplace_back(client, t);
      }
      std::this_thread::sleep_for(cfg.warmup);
      phase.store(1, std::memory_order_relaxed);
      const auto start = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(cfg.duration);
      phase.store(2, std::memory_order_relaxed);
      for (auto& c : clients) c.join();
      exec_stop.store(true, std::memory_order_relaxed);
      for (auto& e : execs) e.join();
      const auto elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      out.result.samples.add(static_cast<double>(total_ops.load()) /
                             elapsed / 1e6);
      // Submission-path rate: staged ops per second spent staging (the
      // window covers the whole rep — warmup skew is negligible and the
      // quantity is a rate, not a count).
      const std::uint64_t sns = submit_ns.load();
      if (sns > 0) {
        out.submit_path.samples.add(
            static_cast<double>(submit_ops.load()) * 1e3 /
            static_cast<double>(sns));
      }
    }
    out.result.mean_mops = out.result.samples.mean();
    out.result.cov = out.result.samples.coeff_of_variation();
    out.submit_path.mean_mops = out.submit_path.samples.mean();
    out.submit_path.cov = out.submit_path.samples.coeff_of_variation();
  }
  ::unlink(path.c_str());
  return out;
}

/// A latency-only point for the per-stage pseudo-series (mops stays 0, so
/// bench_diff.py gates these on p99 alone).
bench::SeriesPoint stage_point(std::size_t threads,
                               const LatencyHistogram& h) {
  bench::SeriesPoint p;
  p.threads = threads;
  p.latency = h;
  return p;
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  std::printf(
      "Figure 5a: scalability — levels of detectability and persistence\n"
      "workload: 16 seed nodes, alternating enqueue/dequeue pairs\n"
      "(Mops/s; paper shape: MS > DSS non-detectable > DSS detectable,\n"
      " gap ≈3x at low threads, curves converge at high threads)\n\n");

  // Optional flight-recorder export (DSSQ_TRACE_DIR): the last cell's
  // events per worker ring, viewable in ui.perfetto.dev.
  bench::TraceSession trace_session("fig5a");

  bench::Series ms{"ms_queue", {}};
  bench::Series nd{"dss_nondetectable", {}};
  bench::Series det{"dss_detectable", {}};
  bench::Series nocomb{"dss_detectable_nocomb", {}};
  bench::Series sharded{"dss_sharded", {}};
  bench::Series mm{"dss_detectable_mmap", {}};
  // The async ring front end plus its three latency-only pipeline-stage
  // series (mops stays 0; bench_diff.py gates them on p99 alone).
  bench::Series ring{"dss_ring", {}};
  bench::Series ring_subm{"dss_ring/submission", {}};
  bench::Series ring_sub{"dss_ring/submit", {}};
  bench::Series ring_exe{"dss_ring/exec", {}};
  bench::Series ring_cmp{"dss_ring/complete", {}};
  std::printf("dss_sharded lanes: %zu (DSSQ_LANES)\n\n",
              queues::default_lane_count());

  harness::Table table({"threads", "ms_queue", "dss_nondetectable",
                        "dss_detectable", "dss_detectable_nocomb",
                        "dss_sharded", "dss_detectable_mmap", "dss_ring",
                        "nd/det", "det/nocomb", "shard/det", "ring/mmap"});
  for (const std::size_t threads : bench::thread_points()) {
    ms.points.push_back(
        bench::measure_point(threads, [&] { return run_ms_queue(threads); }));
    nd.points.push_back(bench::measure_point(
        threads, [&] { return run_dss(threads, /*detectable=*/false); }));
    det.points.push_back(bench::measure_point(
        threads, [&] { return run_dss(threads, /*detectable=*/true); }));
    // The same detectable workload with fence combining disabled: the
    // det/nocomb ratio prices the coalescer on the hot path.
    nocomb.points.push_back(bench::measure_point(threads, [&] {
      return run_dss(threads, /*detectable=*/true,
                     /*force_combining_off=*/true);
    }));
    sharded.points.push_back(bench::measure_point(
        threads, [&] { return run_dss_sharded(threads); }));
    mm.points.push_back(bench::measure_point(
        threads, [&] { return run_dss_mmap(threads); }));
    RingBenchResult rb;
    ring.points.push_back(bench::measure_point(
        threads, [&] { return (rb = run_dss_ring(threads)).result; }));
    bench::SeriesPoint subm;
    subm.threads = threads;
    subm.result = rb.submit_path;
    ring_subm.points.push_back(subm);
    ring_sub.points.push_back(stage_point(threads, rb.stage_submit));
    ring_exe.points.push_back(stage_point(threads, rb.stage_exec));
    ring_cmp.points.push_back(stage_point(threads, rb.stage_complete));
    const double m = ms.points.back().result.mean_mops;
    const double n = nd.points.back().result.mean_mops;
    const double d = det.points.back().result.mean_mops;
    const double nc = nocomb.points.back().result.mean_mops;
    const double sh = sharded.points.back().result.mean_mops;
    const double f = mm.points.back().result.mean_mops;
    const double rg = ring.points.back().result.mean_mops;
    table.add_row({std::to_string(threads), harness::fmt(m),
                   harness::fmt(n), harness::fmt(d), harness::fmt(nc),
                   harness::fmt(sh), harness::fmt(f), harness::fmt(rg),
                   harness::fmt(d > 0 ? n / d : 0, 2),
                   harness::fmt(nc > 0 ? d / nc : 0, 2),
                   harness::fmt(d > 0 ? sh / d : 0, 2),
                   harness::fmt(f > 0 ? rg / f : 0, 2)});
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());

  // Per-stage pipeline latencies for the ring series (submit→drain,
  // drain→exec, exec→poll); all zeros when the build has tracing off
  // (trace::now_ns() returns 0 there).
  harness::Table stages({"threads", "subm Mops", "submit p50", "submit p99",
                         "exec p50", "exec p99", "complete p50",
                         "complete p99"});
  for (std::size_t i = 0; i < ring.points.size(); ++i) {
    stages.add_row(
        {std::to_string(ring.points[i].threads),
         harness::fmt(ring_subm.points[i].result.mean_mops),
         std::to_string(ring_sub.points[i].latency.percentile(50)),
         std::to_string(ring_sub.points[i].latency.percentile(99)),
         std::to_string(ring_exe.points[i].latency.percentile(50)),
         std::to_string(ring_exe.points[i].latency.percentile(99)),
         std::to_string(ring_cmp.points[i].latency.percentile(50)),
         std::to_string(ring_cmp.points[i].latency.percentile(99))});
  }
  std::printf(
      "\ndss_ring pipeline stages (subm Mops = submission-path rate;\n"
      "latencies in ns from the CompEntry stamps, zeros with tracing "
      "off):\n");
  stages.print();

  const std::string path = bench::write_report(
      "fig5a", {ms, nd, det, nocomb, sharded, mm, ring, ring_subm, ring_sub,
                ring_exe, ring_cmp});
  if (!path.empty()) std::printf("\nJSON report: %s\n", path.c_str());
  return 0;
}
