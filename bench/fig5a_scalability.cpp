// Figure 5a — "Different levels of detectability and persistence".
//
// Reproduces the paper's scalability experiment: the queue is seeded with
// 16 nodes; each thread runs alternating enqueue/dequeue pairs; mean
// throughput (Mops/s) is reported per thread count for
//   * MS queue                  (volatile: flushes removed),
//   * DSS queue non-detectable  (persistent, no X accesses),
//   * DSS queue detectable      (prep/exec on every operation).
//
// Expected shape (paper): MS > non-detectable > detectable, with the
// detectability gap largest at low thread counts (≈3× at 1–2 threads) and
// all three curves converging as contention on head/tail dominates.
// Absolute numbers differ (emulated NVM latency, container CPU); the
// ordering and the direction of convergence are the reproduction targets.
//
// Besides the table + CSV, writes BENCH_fig5a.json with per-point
// throughput statistics and counter attribution; the detectable series
// must show strictly more flushes per operation than the non-detectable
// one (the X[p] persists of Figure 3) — that invariant is what the JSON
// lets CI assert.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

#include "bench_common.hpp"
#include "harness/adapters.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "pmem/context.hpp"
#include "pmem/persistent_heap.hpp"
#include "queues/dss_queue.hpp"
#include "queues/ms_queue.hpp"
#include "queues/sharded_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using bench::kNodesPerThread;

harness::WorkloadResult run_ms_queue(std::size_t threads) {
  pmem::VolatileContext ctx(kArenaBytes);
  queues::MsQueue<pmem::VolatileContext> q(ctx, threads, kNodesPerThread);
  harness::DirectAdapter<decltype(q)> adapter{q};
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads));
}

harness::WorkloadResult run_dss(std::size_t threads, bool detectable,
                                bool force_combining_off = false) {
  // The main series run under the process-wide knob (env
  // DSSQ_FENCE_COMBINING), so an all-OFF sweep for bench_diff.py stays
  // possible; only the nocomb series forces the knob, scoped to the cell.
  const bool saved = pmem::fence_combining_enabled();
  if (force_combining_off) pmem::set_fence_combining_enabled(false);
  pmem::EmulatedNvmContext ctx(kArenaBytes);
  queues::DssQueue<pmem::EmulatedNvmContext> q(ctx, threads,
                                               kNodesPerThread);
  harness::WorkloadResult result;
  if (detectable) {
    harness::DetectableAdapter<decltype(q)> adapter{q};
    harness::seed_queue(adapter, 16);
    result = harness::run_throughput(adapter, bench::workload_config(threads));
  } else {
    harness::DirectAdapter<decltype(q)> adapter{q};
    harness::seed_queue(adapter, 16);
    result = harness::run_throughput(adapter, bench::workload_config(threads));
  }
  pmem::set_fence_combining_enabled(saved);
  return result;
}

// The detectable workload against the N-lane sharded queue (operation
// combining per lane, global-ticket FIFO).  The lane count comes from
// DSSQ_LANES (default min(hw threads, 8)), so CI sweeps lane counts by
// re-running the binary: DSSQ_LANES=1 prices the combiner alone,
// DSSQ_LANES=8 adds the contention split.
harness::WorkloadResult run_dss_sharded(std::size_t threads) {
  pmem::EmulatedNvmContext ctx(kArenaBytes);
  queues::ShardedDssQueue<pmem::EmulatedNvmContext> q(ctx, threads,
                                                      kNodesPerThread);
  harness::DetectableAdapter<decltype(q)> adapter{q};
  harness::seed_queue(adapter, 16);
  return harness::run_throughput(adapter, bench::workload_config(threads));
}

// Same detectable workload against the file-backed mmap heap instead of
// the emulated-NVM DRAM arena: persists become msync/fdatasync (or CLWB
// on a MAP_SYNC mount), so the series prices real write-back durability.
// Heap file goes to DSSQ_HEAP_DIR (default /tmp; point it at tmpfs or a
// DAX mount to change the tier) and is recreated per cell.
std::string heap_path() {
  const char* dir = std::getenv("DSSQ_HEAP_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  if (path.back() != '/') path.push_back('/');
  path += "dssq-fig5a-" + std::to_string(::getpid()) + ".heap";
  return path;
}

harness::WorkloadResult run_dss_mmap(std::size_t threads) {
  const std::string path = heap_path();
  ::unlink(path.c_str());
  pmem::PersistentHeap::Options opt;
  opt.bytes = kArenaBytes;
  pmem::PersistentHeap heap(path, pmem::PersistentHeap::OpenMode::kCreate,
                            opt);
  pmem::MmapContext ctx(heap);
  harness::WorkloadResult result;
  {
    queues::DssQueue<pmem::MmapContext> q(ctx, threads, kNodesPerThread);
    harness::DetectableAdapter<decltype(q)> adapter{q};
    harness::seed_queue(adapter, 16);
    result = harness::run_throughput(adapter, bench::workload_config(threads));
  }
  ::unlink(path.c_str());
  return result;
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  std::printf(
      "Figure 5a: scalability — levels of detectability and persistence\n"
      "workload: 16 seed nodes, alternating enqueue/dequeue pairs\n"
      "(Mops/s; paper shape: MS > DSS non-detectable > DSS detectable,\n"
      " gap ≈3x at low threads, curves converge at high threads)\n\n");

  // Optional flight-recorder export (DSSQ_TRACE_DIR): the last cell's
  // events per worker ring, viewable in ui.perfetto.dev.
  bench::TraceSession trace_session("fig5a");

  bench::Series ms{"ms_queue", {}};
  bench::Series nd{"dss_nondetectable", {}};
  bench::Series det{"dss_detectable", {}};
  bench::Series nocomb{"dss_detectable_nocomb", {}};
  bench::Series sharded{"dss_sharded", {}};
  bench::Series mm{"dss_detectable_mmap", {}};
  std::printf("dss_sharded lanes: %zu (DSSQ_LANES)\n\n",
              queues::default_lane_count());

  harness::Table table({"threads", "ms_queue", "dss_nondetectable",
                        "dss_detectable", "dss_detectable_nocomb",
                        "dss_sharded", "dss_detectable_mmap", "nd/det",
                        "det/nocomb", "shard/det"});
  for (const std::size_t threads : bench::thread_points()) {
    ms.points.push_back(
        bench::measure_point(threads, [&] { return run_ms_queue(threads); }));
    nd.points.push_back(bench::measure_point(
        threads, [&] { return run_dss(threads, /*detectable=*/false); }));
    det.points.push_back(bench::measure_point(
        threads, [&] { return run_dss(threads, /*detectable=*/true); }));
    // The same detectable workload with fence combining disabled: the
    // det/nocomb ratio prices the coalescer on the hot path.
    nocomb.points.push_back(bench::measure_point(threads, [&] {
      return run_dss(threads, /*detectable=*/true,
                     /*force_combining_off=*/true);
    }));
    sharded.points.push_back(bench::measure_point(
        threads, [&] { return run_dss_sharded(threads); }));
    mm.points.push_back(bench::measure_point(
        threads, [&] { return run_dss_mmap(threads); }));
    const double m = ms.points.back().result.mean_mops;
    const double n = nd.points.back().result.mean_mops;
    const double d = det.points.back().result.mean_mops;
    const double nc = nocomb.points.back().result.mean_mops;
    const double sh = sharded.points.back().result.mean_mops;
    const double f = mm.points.back().result.mean_mops;
    table.add_row({std::to_string(threads), harness::fmt(m),
                   harness::fmt(n), harness::fmt(d), harness::fmt(nc),
                   harness::fmt(sh), harness::fmt(f),
                   harness::fmt(d > 0 ? n / d : 0, 2),
                   harness::fmt(nc > 0 ? d / nc : 0, 2),
                   harness::fmt(d > 0 ? sh / d : 0, 2)});
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());

  const std::string path =
      bench::write_report("fig5a", {ms, nd, det, nocomb, sharded, mm});
  if (!path.empty()) std::printf("\nJSON report: %s\n", path.c_str());
  return 0;
}
