// Micro M4 — cost profile of the universal construction.
//
// The universal construction is the library's universality witness, not a
// performance contender; this bench quantifies exactly the costs its
// documentation claims: appends are cheap and O(1) amortized, but a
// FIRST response computation replays the log (O(position)), after which
// memoization makes resolve O(1).

#include <benchmark/benchmark.h>

#include "dss/specs/counter_spec.hpp"
#include "dss/specs/queue_spec.hpp"
#include "dss/universal.hpp"
#include "pmem/context.hpp"

namespace dssq::dss {
namespace {

using Ctx = pmem::EmulatedNvmContext;

void BM_UniversalAppend(benchmark::State& state) {
  // prep+exec cost when responses are memoized incrementally (each op's
  // replay extends the previous memoized prefix by one).
  Ctx ctx(1u << 26, pmem::EmulatedNvmBackend(pmem::EmulationParams{0, 0}));
  UniversalObject<CounterSpec, Ctx> c(ctx, 1, 1u << 16);
  for (auto _ : state) {
    c.prep(0, CounterSpec::Op{CounterSpec::Add{1}});
    benchmark::DoNotOptimize(c.exec(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UniversalAppend)->Iterations(20000);

void BM_UniversalColdResolve(benchmark::State& state) {
  // Resolve of the LAST op of a log of the given length, with all memos
  // already populated along the prefix: O(1).
  const auto len = static_cast<std::size_t>(state.range(0));
  Ctx ctx(1u << 26, pmem::EmulatedNvmBackend(pmem::EmulationParams{0, 0}));
  UniversalObject<CounterSpec, Ctx> c(ctx, 1, len + 8);
  for (std::size_t i = 0; i < len; ++i) {
    c.apply(0, CounterSpec::Op{CounterSpec::Add{1}});
  }
  c.prep(0, CounterSpec::Op{CounterSpec::Add{1}});
  c.exec(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.resolve(0));
  }
}
BENCHMARK(BM_UniversalColdResolve)->Arg(100)->Arg(10000);

void BM_UniversalMaterialize(benchmark::State& state) {
  // Full-state reconstruction cost vs log length: O(n) replay.
  const auto len = static_cast<std::size_t>(state.range(0));
  Ctx ctx(1u << 26, pmem::EmulatedNvmBackend(pmem::EmulationParams{0, 0}));
  UniversalObject<CounterSpec, Ctx> c(ctx, 1, len + 8);
  for (std::size_t i = 0; i < len; ++i) {
    c.apply(0, CounterSpec::Op{CounterSpec::Add{1}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.materialize());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_UniversalMaterialize)->Arg(100)->Arg(1000)->Arg(10000);

void BM_UniversalQueueVsHandBuilt(benchmark::State& state) {
  // The universality price tag: a queue pair through the universal
  // construction (compare with BM_DssDetectablePair in micro_dss_ops).
  Ctx ctx(1u << 26, pmem::EmulatedNvmBackend(pmem::EmulationParams{0, 0}));
  UniversalObject<QueueSpec, Ctx> q(ctx, 1, 1u << 15);
  for (auto _ : state) {
    q.prep(0, QueueSpec::Op{QueueSpec::Enq{1}});
    q.exec(0);
    q.prep(0, QueueSpec::Op{QueueSpec::Deq{}});
    benchmark::DoNotOptimize(q.exec(0));
  }
  state.SetItemsProcessed(2 * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UniversalQueueVsHandBuilt)->Iterations(5000);

}  // namespace
}  // namespace dssq::dss
