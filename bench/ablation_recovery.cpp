// Ablation A3 — recovery cost.
//
// The Figure 6 recovery procedure scans the linked list from the persisted
// head, repairs head/tail, fixes ENQ_COMPL tags for all n threads, and
// rebuilds the free lists.  Its cost is therefore O(queue length + n).
// This ablation measures wall-clock recovery time against queue length and
// thread count, for both the centralized pass and the per-thread
// independent variant (whose X repair is also a list scan in the worst
// case, but which skips the structural repair and reclamation).

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "harness/table.hpp"
#include "pmem/context.hpp"
#include "pmem/crash.hpp"
#include "pmem/shadow_pool.hpp"
#include "queues/dss_queue.hpp"

namespace dssq {
namespace {

using SimQ = queues::DssQueue<pmem::SimContext>;

struct RecoveryTimes {
  double centralized_us = 0;
  double independent_us = 0;  // one thread's recover_independent
};

RecoveryTimes measure(std::size_t threads, std::size_t queue_length) {
  // Spread the seed enqueues round-robin so every thread's pool stays
  // proportional to its share of the queue.
  const std::size_t per_thread = queue_length / threads + 96;
  pmem::ShadowPool pool(threads * per_thread * 96 + (8u << 20));
  pmem::CrashPoints points;
  pmem::SimContext ctx(pool, points);
  SimQ q(ctx, threads, per_thread);
  for (std::size_t i = 0; i < queue_length; ++i) {
    q.enqueue(i % threads, static_cast<queues::Value>(i));
  }
  // Leave one operation of every thread in a prepared state so recovery's
  // X pass has real work.
  for (std::size_t t = 0; t < threads; ++t) {
    q.prep_enqueue(t, static_cast<queues::Value>(1000 + t));
    q.exec_enqueue(t);
  }
  pool.crash({pmem::ShadowPool::Survival::kAll, 1.0, 1});

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  q.recover();
  const auto t1 = Clock::now();
  q.recover_independent(0);
  const auto t2 = Clock::now();

  RecoveryTimes out;
  out.centralized_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  out.independent_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count();
  return out;
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  std::printf(
      "Ablation A3: recovery cost (DSS queue)\n"
      "(Figure 6 centralized recovery vs one thread's independent repair;\n"
      " expectation: centralized cost grows linearly with queue length)\n\n");

  harness::Table table({"threads", "queue_len", "centralized_us",
                        "independent_us"});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8},
                                    std::size_t{20}}) {
    for (const std::size_t len :
         {std::size_t{16}, std::size_t{1'000}, std::size_t{10'000},
          std::size_t{100'000}}) {
      const RecoveryTimes t = measure(threads, len);
      table.add_row({std::to_string(threads), std::to_string(len),
                     harness::fmt(t.centralized_us, 1),
                     harness::fmt(t.independent_us, 1)});
    }
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
