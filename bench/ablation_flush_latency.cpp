// Ablation A1 — flush-latency sensitivity.
//
// The paper's numbers are tied to Optane DCPMM write-back latency; this
// ablation sweeps the emulated NVM latency from 0 (DRAM-like) upward and
// reports how each queue's throughput and the key ratios respond.  Two
// expectations follow from the algorithms' persist counts:
//   * at latency 0 the queues converge toward their instruction-count
//     cost (the MS/DSS gap collapses to the X-maintenance work);
//   * as latency grows, the ordering DSS > Log > Fast CASWE > General
//     CASWE is preserved but every curve scales down with its per-op
//     persist count (the DSS queue's advantage over PMwCAS-based designs
//     widens — it issues fewer flushes per operation).

#include <cstdio>

#include "bench_common.hpp"
#include "harness/adapters.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "pmem/backend.hpp"
#include "pmem/context.hpp"
#include "pmwcas/caswe_queue.hpp"
#include "queues/dss_queue.hpp"
#include "queues/log_queue.hpp"
#include "queues/ms_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using bench::kNodesPerThread;
using Ctx = pmem::EmulatedNvmContext;

template <class Run>
double with_ctx(std::uint64_t flush_ns, std::uint64_t fence_ns, Run&& run) {
  pmem::EmulationParams p;
  p.flush_ns_per_line = flush_ns;
  p.fence_ns = fence_ns;
  Ctx ctx(kArenaBytes, pmem::EmulatedNvmBackend(p));
  return run(ctx);
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  const std::size_t threads = bench::env_u64("DSSQ_ABLATION_THREADS", 4);
  const auto cfg = bench::workload_config(threads);

  std::printf(
      "Ablation A1: emulated NVM flush latency sweep (threads=%zu)\n"
      "(Mops/s per queue as per-line flush / fence latency grows)\n\n",
      threads);

  struct LatencyPoint {
    std::uint64_t flush_ns;
    std::uint64_t fence_ns;
  };
  const LatencyPoint points[] = {{0, 0}, {30, 60}, {60, 120}, {150, 300},
                                 {300, 600}};

  harness::Table table({"flush_ns", "fence_ns", "ms", "dss_det", "log",
                        "fast_caswe", "general_caswe", "dss/log"});
  for (const auto& p : points) {
    const double ms = with_ctx(p.flush_ns, p.fence_ns, [&](Ctx& ctx) {
      queues::MsQueue<Ctx> q(ctx, threads, kNodesPerThread);
      harness::DirectAdapter<decltype(q)> a{q};
      harness::seed_queue(a, 16);
      return harness::run_throughput(a, cfg).mean_mops;
    });
    const double dss = with_ctx(p.flush_ns, p.fence_ns, [&](Ctx& ctx) {
      queues::DssQueue<Ctx> q(ctx, threads, kNodesPerThread);
      harness::DetectableAdapter<decltype(q)> a{q};
      harness::seed_queue(a, 16);
      return harness::run_throughput(a, cfg).mean_mops;
    });
    const double log = with_ctx(p.flush_ns, p.fence_ns, [&](Ctx& ctx) {
      queues::LogQueue<Ctx> q(ctx, threads, kNodesPerThread);
      harness::DirectAdapter<decltype(q)> a{q};
      harness::seed_queue(a, 16);
      return harness::run_throughput(a, cfg).mean_mops;
    });
    const double fast = with_ctx(p.flush_ns, p.fence_ns, [&](Ctx& ctx) {
      pmwcas::FastCasWithEffectQueue<Ctx> q(ctx, threads, kNodesPerThread);
      harness::DirectAdapter<decltype(q)> a{q};
      harness::seed_queue(a, 16);
      return harness::run_throughput(a, cfg).mean_mops;
    });
    const double gen = with_ctx(p.flush_ns, p.fence_ns, [&](Ctx& ctx) {
      pmwcas::GeneralCasWithEffectQueue<Ctx> q(ctx, threads,
                                               kNodesPerThread);
      harness::DirectAdapter<decltype(q)> a{q};
      harness::seed_queue(a, 16);
      return harness::run_throughput(a, cfg).mean_mops;
    });
    table.add_row({std::to_string(p.flush_ns), std::to_string(p.fence_ns),
                   harness::fmt(ms), harness::fmt(dss), harness::fmt(log),
                   harness::fmt(fast), harness::fmt(gen),
                   harness::fmt(log > 0 ? dss / log : 0, 2)});
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
