// Shared configuration for the figure-regeneration benches.
//
// The paper measures 1..20 threads, 30-second runs, 10 repetitions, on a
// 20-core machine.  In a container those defaults are impractical, so each
// knob is environment-tunable; the defaults keep a full figure under ~10 s
// while preserving the comparison structure.  To approximate the paper's
// methodology on real hardware:
//   DSSQ_BENCH_MS=30000 DSSQ_BENCH_REPS=10 DSSQ_BENCH_THREADS=1,2,...,20
//
// Besides the human-readable table + CSV, each figure bench writes a
// machine-readable BENCH_<name>.json (schema in docs/observability.md):
// the full config, and per series × thread count the throughput statistics
// plus the metrics-counter attribution (flushes, fences, CAS retries, EBR
// traffic) for the whole run, absolute and per operation.  Output directory
// is DSSQ_BENCH_JSON_DIR (default: current directory).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/histogram.hpp"
#include "common/json_writer.hpp"
#include "common/metrics.hpp"
#include "common/trace_export.hpp"
#include "harness/workload.hpp"
#include "pmem/backend.hpp"

namespace dssq::bench {

inline std::uint64_t env_u64(const char* var, std::uint64_t fallback) {
  const char* s = std::getenv(var);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const auto v = std::strtoull(s, &end, 10);
  return end == s ? fallback : v;
}

/// Thread counts to sweep: DSSQ_BENCH_THREADS="1,2,4" or default.
inline std::vector<std::size_t> thread_points() {
  const char* s = std::getenv("DSSQ_BENCH_THREADS");
  std::vector<std::size_t> out;
  if (s != nullptr && *s != '\0') {
    std::string cur;
    for (const char* p = s;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!cur.empty()) out.push_back(std::stoul(cur));
        cur.clear();
        if (*p == '\0') break;
      } else {
        cur.push_back(*p);
      }
    }
    if (!out.empty()) return out;
  }
  return {1, 2, 4, 8, 12, 16, 20};  // the paper sweeps 1..20
}

inline harness::WorkloadConfig workload_config(std::size_t threads) {
  harness::WorkloadConfig cfg;
  cfg.threads = threads;
  cfg.duration = std::chrono::milliseconds(env_u64("DSSQ_BENCH_MS", 120));
  cfg.warmup = std::chrono::milliseconds(env_u64("DSSQ_BENCH_WARMUP_MS", 15));
  cfg.repetitions = env_u64("DSSQ_BENCH_REPS", 2);
  cfg.initial_items = 16;  // paper: "initialized with 16 queue nodes"
  return cfg;
}

inline constexpr std::size_t kMaxThreads = 32;
inline constexpr std::size_t kNodesPerThread = 4096;
inline constexpr std::size_t kArenaBytes = std::size_t{64} << 20;

// ---- JSON report ----------------------------------------------------------

/// One measured (series, thread count) cell: throughput stats plus the
/// metrics-counter delta accumulated over the run (warmup included — the
/// counters attribute the whole process activity of the cell, and the
/// per-op ratios divide by the ops counted over the same window).
struct SeriesPoint {
  std::size_t threads = 0;
  harness::WorkloadResult result;
  metrics::Snapshot counters;
  LatencyHistogram latency;  // per-op latency over the cell (ns)
};

struct Series {
  std::string name;
  std::vector<SeriesPoint> points;
};

/// Run one cell under counter attribution: snapshot the global counters
/// around `run` and record the delta.
template <class Fn>
SeriesPoint measure_point(std::size_t threads, Fn&& run) {
  SeriesPoint pt;
  pt.threads = threads;
  const metrics::Snapshot before = metrics::snapshot();
  hist::reset();  // histograms have no snapshot-delta; zero between cells
  pt.result = std::forward<Fn>(run)();
  pt.counters = metrics::snapshot() - before;
  pt.latency = hist::merged();
  return pt;
}

/// BENCH_<name>.json path, honoring DSSQ_BENCH_JSON_DIR.
inline std::string json_output_path(const std::string& name) {
  const char* dir = std::getenv("DSSQ_BENCH_JSON_DIR");
  std::string path;
  if (dir != nullptr && *dir != '\0') {
    path = dir;
    if (path.back() != '/') path.push_back('/');
  }
  path += "BENCH_" + name + ".json";
  return path;
}

/// Write the figure-bench report (schema documented in
/// docs/observability.md).  Returns the path written, or "" on I/O failure.
inline std::string write_report(const std::string& bench_name,
                                const std::vector<Series>& series) {
  const harness::WorkloadConfig cfg = workload_config(1);
  const pmem::EmulationParams emu = pmem::emulation_params_from_env();

  json::Writer w;
  w.begin_object();
  w.kv("bench", bench_name);
  w.kv("schema_version", std::uint64_t{2});
  w.key("config");
  w.begin_object();
  w.kv("duration_ms",
       static_cast<std::uint64_t>(cfg.duration.count()));
  w.kv("warmup_ms", static_cast<std::uint64_t>(cfg.warmup.count()));
  w.kv("repetitions", static_cast<std::uint64_t>(cfg.repetitions));
  w.kv("initial_items", static_cast<std::uint64_t>(cfg.initial_items));
  w.kv("flush_ns_per_line", emu.flush_ns_per_line);
  w.kv("fence_ns", emu.fence_ns);
  w.kv("metrics_enabled", metrics::kEnabled);
  w.kv("trace_enabled", trace::kEnabled);
  w.key("threads");
  w.begin_array();
  for (const std::size_t t : thread_points()) {
    w.value(static_cast<std::uint64_t>(t));
  }
  w.end_array();
  w.end_object();

  w.key("series");
  w.begin_array();
  for (const Series& s : series) {
    w.begin_object();
    w.kv("name", s.name);
    w.key("points");
    w.begin_array();
    for (const SeriesPoint& pt : s.points) {
      const Stats& st = pt.result.samples;
      w.begin_object();
      w.kv("threads", static_cast<std::uint64_t>(pt.threads));
      w.kv("mean_mops", pt.result.mean_mops);
      w.kv("stddev_mops", st.stddev());
      w.kv("cov", pt.result.cov);
      w.kv("p50_mops", st.count() > 0 ? st.percentile(50) : 0.0);
      w.kv("p99_mops", st.count() > 0 ? st.percentile(99) : 0.0);
      // Per-operation latency distribution over the cell (all zero when
      // the build has tracing off).
      w.key("latency_ns");
      w.begin_object();
      w.kv("count", pt.latency.count());
      w.kv("p50", pt.latency.percentile(50));
      w.kv("p95", pt.latency.percentile(95));
      w.kv("p99", pt.latency.percentile(99));
      w.kv("p999", pt.latency.percentile(99.9));
      w.kv("max", pt.latency.max());
      w.end_object();
      w.key("counters");
      w.begin_object();
      for (std::size_t c = 0; c < metrics::kCounterCount; ++c) {
        const auto counter = static_cast<metrics::Counter>(c);
        w.kv(metrics::name(counter), pt.counters[counter]);
      }
      w.end_object();
      // Per-operation attribution over the same window (0 when the build
      // has metrics off, or nothing ran).
      const std::uint64_t ops = pt.counters[metrics::Counter::kOps];
      w.key("per_op");
      w.begin_object();
      for (const auto counter :
           {metrics::Counter::kFlushCalls, metrics::Counter::kFlushLines,
            metrics::Counter::kFences, metrics::Counter::kFencesElided,
            metrics::Counter::kFencesCombined, metrics::Counter::kCasRetries,
            metrics::Counter::kEbrRetired, metrics::Counter::kEbrReclaimed}) {
        const double per =
            ops > 0 ? static_cast<double>(pt.counters[counter]) /
                          static_cast<double>(ops)
                    : 0.0;
        w.kv(metrics::name(counter), per);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string path = json_output_path(bench_name);
  if (!w.write_file(path)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return {};
  }
  return path;
}

// ---- optional live trace export -------------------------------------------

/// RAII flight-recorder session for a figure bench: when DSSQ_TRACE_DIR is
/// set (and the build has tracing on), installs a recorder sized for
/// kMaxThreads worker rings plus one for the main thread, and on
/// destruction exports TRACE_<name>.perfetto.json into that directory.
class TraceSession {
 public:
  explicit TraceSession(const std::string& name) : name_(name) {
    const char* dir = std::getenv("DSSQ_TRACE_DIR");
    if (!trace::kEnabled || dir == nullptr || *dir == '\0') return;
    dir_ = dir;
    rings_ = kMaxThreads + 1;
    const std::size_t bytes =
        trace::FlightRecorder::bytes_for(rings_, kRecordsPerRing);
    mem_ = ::operator new(bytes, std::align_val_t{kCacheLineSize});
    rec_ = trace::FlightRecorder::format(mem_, rings_, kRecordsPerRing);
    trace::install(rec_);
    trace::bind_ring(rings_ - 1);  // main thread takes the extra ring
  }

  ~TraceSession() {
    if (mem_ == nullptr) return;
    trace::unbind_ring();
    trace::uninstall();
    std::string path = dir_;
    if (path.back() != '/') path.push_back('/');
    path += "TRACE_" + name_ + ".perfetto.json";
    json_dump(path);
    ::operator delete(mem_, std::align_val_t{kCacheLineSize});
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  void json_dump(const std::string& path) const {
    trace::ExportMeta meta;
    meta.process_name = "bench " + name_;
    const std::string doc = trace::export_chrome_json(rec_, meta);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("trace: %s\n", path.c_str());
  }

  static constexpr std::size_t kRecordsPerRing = 4096;
  std::string name_;
  std::string dir_;
  std::size_t rings_ = 0;
  void* mem_ = nullptr;
  trace::FlightRecorder rec_;
};

}  // namespace dssq::bench
