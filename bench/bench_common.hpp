// Shared configuration for the figure-regeneration benches.
//
// The paper measures 1..20 threads, 30-second runs, 10 repetitions, on a
// 20-core machine.  In a container those defaults are impractical, so each
// knob is environment-tunable; the defaults keep a full figure under ~10 s
// while preserving the comparison structure.  To approximate the paper's
// methodology on real hardware:
//   DSSQ_BENCH_MS=30000 DSSQ_BENCH_REPS=10 DSSQ_BENCH_THREADS=1,2,...,20
#pragma once

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/workload.hpp"

namespace dssq::bench {

inline std::uint64_t env_u64(const char* var, std::uint64_t fallback) {
  const char* s = std::getenv(var);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const auto v = std::strtoull(s, &end, 10);
  return end == s ? fallback : v;
}

/// Thread counts to sweep: DSSQ_BENCH_THREADS="1,2,4" or default.
inline std::vector<std::size_t> thread_points() {
  const char* s = std::getenv("DSSQ_BENCH_THREADS");
  std::vector<std::size_t> out;
  if (s != nullptr && *s != '\0') {
    std::string cur;
    for (const char* p = s;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!cur.empty()) out.push_back(std::stoul(cur));
        cur.clear();
        if (*p == '\0') break;
      } else {
        cur.push_back(*p);
      }
    }
    if (!out.empty()) return out;
  }
  return {1, 2, 4, 8, 12, 16, 20};  // the paper sweeps 1..20
}

inline harness::WorkloadConfig workload_config(std::size_t threads) {
  harness::WorkloadConfig cfg;
  cfg.threads = threads;
  cfg.duration = std::chrono::milliseconds(env_u64("DSSQ_BENCH_MS", 120));
  cfg.warmup = std::chrono::milliseconds(env_u64("DSSQ_BENCH_WARMUP_MS", 15));
  cfg.repetitions = env_u64("DSSQ_BENCH_REPS", 2);
  cfg.initial_items = 16;  // paper: "initialized with 16 queue nodes"
  return cfg;
}

inline constexpr std::size_t kMaxThreads = 32;
inline constexpr std::size_t kNodesPerThread = 4096;
inline constexpr std::size_t kArenaBytes = std::size_t{64} << 20;

}  // namespace dssq::bench
