// Micro M6 — detectable CAS designs compared.
//
// DSS-style D⟨CAS⟩ (prep/exec/resolve, identity carried out-of-band by the
// prepared record) vs the NRL+-style sequence-number CAS (identity packed
// into the word, every operation detectable).  Beyond throughput, the
// designs differ in value range (48 vs 42 payload bits here) and in
// detection soundness windows — see tests/test_nrlplus_cas.cpp for the
// executable aliasing counterexample.

#include <benchmark/benchmark.h>

#include "objects/detectable_cas.hpp"
#include "objects/nrlplus_cas.hpp"
#include "pmem/context.hpp"

namespace dssq::objects {
namespace {

using Ctx = pmem::EmulatedNvmContext;

void BM_DssCasDetectable(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DetectableCas<Ctx> cas(ctx, 2);
  std::int64_t v = 0;
  for (auto _ : state) {
    cas.prep_cas(0, v, v + 1);
    benchmark::DoNotOptimize(cas.exec_cas(0));
    ++v;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DssCasDetectable);

void BM_DssCasPlain(benchmark::State& state) {
  // The on-demand knob: the same object, Axiom-4 path (no X traffic).
  Ctx ctx(1 << 22);
  DetectableCas<Ctx> cas(ctx, 2);
  std::int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cas.cas(0, v, v + 1));
    ++v;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DssCasPlain);

void BM_NrlPlusCas(benchmark::State& state) {
  // Always-detectable: announce persist + swap persist every time.
  Ctx ctx(1 << 22);
  NrlPlusCas<Ctx> cas(ctx, 2);
  std::int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cas.cas(0, v, v + 1));
    ++v;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NrlPlusCas);

void BM_DssCasResolve(benchmark::State& state) {
  Ctx ctx(1 << 22);
  DetectableCas<Ctx> cas(ctx, 2);
  cas.prep_cas(0, 0, 1);
  cas.exec_cas(0);
  for (auto _ : state) benchmark::DoNotOptimize(cas.resolve(0));
}
BENCHMARK(BM_DssCasResolve);

void BM_NrlPlusRecover(benchmark::State& state) {
  Ctx ctx(1 << 22);
  NrlPlusCas<Ctx> cas(ctx, 2);
  cas.cas(0, 0, 1);
  for (auto _ : state) benchmark::DoNotOptimize(cas.recover(0));
}
BENCHMARK(BM_NrlPlusRecover);

}  // namespace
}  // namespace dssq::objects
