// Ablation A6 — operation-mix sensitivity.
//
// The paper's workload alternates enqueue/dequeue pairs (a 50/50 mix that
// keeps the queue near-empty).  This ablation varies the enqueue fraction
// and the queue's standing depth, checking that the Figure-5 orderings are
// not artifacts of the balanced mix:
//   * enqueue-heavy mixes grow the queue (bounded here by draining when
//     the per-thread pool nears exhaustion);
//   * dequeue-heavy mixes run near-empty and exercise the EMPTY path
//     (which for the DSS detectable queue persists one X update but no
//     node, so it is the cheapest detectable operation).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "harness/table.hpp"
#include "pmem/context.hpp"
#include "queues/dss_queue.hpp"
#include "queues/log_queue.hpp"

namespace dssq {
namespace {

using bench::kArenaBytes;
using Ctx = pmem::EmulatedNvmContext;

template <class DoEnq, class DoDeq>
double run_mix(std::size_t threads, double enq_fraction, DoEnq&& enq,
               DoDeq&& deq) {
  const auto cfg = bench::workload_config(threads);
  double total = 0;
  for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
    std::atomic<int> phase{0};
    std::atomic<std::uint64_t> ops_done{0};
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(rep * 1000 + t);
        queues::Value v = static_cast<queues::Value>(t) * 1'000'000;
        std::uint64_t ops = 0;
        std::uint64_t outstanding = 0;  // this thread's net enqueues
        int seen = 0;
        while (seen < 2) {
          // Cap per-thread queue growth so pools never exhaust.
          const bool do_enq =
              outstanding < 2000 &&
              (outstanding == 0 || rng.next_bool(enq_fraction));
          if (do_enq) {
            enq(t, v++);
            ++outstanding;
          } else {
            if (deq(t) != queues::kEmpty && outstanding > 0) --outstanding;
          }
          const int p = phase.load(std::memory_order_relaxed);
          if (p != seen) {
            if (p == 1) ops = 0;
            seen = p;
          }
          ++ops;
        }
        ops_done.fetch_add(ops, std::memory_order_relaxed);
      });
    }
    std::this_thread::sleep_for(cfg.warmup);
    phase.store(1);
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(cfg.duration);
    phase.store(2);
    for (auto& w : workers) w.join();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    total += static_cast<double>(ops_done.load()) / secs / 1e6;
  }
  return total / static_cast<double>(cfg.repetitions);
}

}  // namespace
}  // namespace dssq

int main() {
  using namespace dssq;
  const std::size_t threads = bench::env_u64("DSSQ_ABLATION_THREADS", 4);
  std::printf(
      "Ablation A6: operation-mix sensitivity (threads=%zu)\n"
      "(Mops/s as the enqueue fraction varies; DSS detectable vs Log;\n"
      " the Figure-5b ordering should hold at every mix)\n\n",
      threads);

  harness::Table table(
      {"enq_fraction", "dss_det", "log", "dss/log"});
  for (const double f : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    Ctx ctx1(kArenaBytes);
    queues::DssQueue<Ctx> dss(ctx1, threads, 8192);
    const double d = run_mix(
        threads, f,
        [&](std::size_t t, queues::Value v) {
          dss.prep_enqueue(t, v);
          dss.exec_enqueue(t);
        },
        [&](std::size_t t) {
          dss.prep_dequeue(t);
          return dss.exec_dequeue(t);
        });
    Ctx ctx2(kArenaBytes);
    queues::LogQueue<Ctx> log(ctx2, threads, 8192);
    const double l = run_mix(
        threads, f,
        [&](std::size_t t, queues::Value v) { log.enqueue(t, v); },
        [&](std::size_t t) { return log.dequeue(t); });
    table.add_row({harness::fmt(f, 2), harness::fmt(d), harness::fmt(l),
                   harness::fmt(l > 0 ? d / l : 0, 2)});
  }
  table.print();
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  return 0;
}
